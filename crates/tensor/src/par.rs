//! Dependency-free data parallelism on `std::thread::scope`.
//!
//! The workspace never pulls a thread-pool crate: hot paths that want
//! batch-level parallelism call [`for_each_chunk_mut`] (disjoint output
//! chunks) or [`map_with`] (an indexed map with worker-local state —
//! the trainer, the evaluator and the qdp component sweep), both built
//! on [`spans`] + `std::thread::scope`. Everything degrades to a plain
//! serial loop when the configured worker count is 1 or the job is too
//! small to amortize a thread spawn, so single-core machines pay
//! nothing.
//!
//! # Thread-count resolution
//!
//! The worker count comes from, in priority order:
//!
//! 1. a process-wide override set with [`set_threads`] (used by CLI
//!    `--threads` flags and the determinism tests),
//! 2. the `REDCANE_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! # Determinism
//!
//! Parallel callers in this workspace follow one rule: **each output
//! element is written by exactly one worker, computed exactly as the
//! serial loop would**. Chunking never changes what is computed, only
//! who computes it, so results are bitwise identical for every thread
//! count (asserted end-to-end by the pipeline determinism test).

use std::sync::atomic::{AtomicUsize, Ordering};

use redcane_trace as trace;

/// Process-wide worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Work-counter hook at every parallel-for entry point. Counts the
/// *invocation* and its logical items — never spans, chunks or worker
/// spawns, which vary with `REDCANE_THREADS` — so the totals stay
/// bit-identical at every thread count (the worker count itself is
/// profile *metadata*, reported via [`num_threads`]).
#[inline]
fn trace_par(items: usize) {
    if trace::enabled() {
        trace::add(trace::Counter::ParCalls, 1);
        trace::add(trace::Counter::ParItems, items as u64);
    }
}

/// Jobs with fewer work items than this run serially even when more
/// workers are configured: a thread spawn costs ~10µs, so tiny batches
/// are faster inline.
const MIN_ITEMS_PER_THREAD: usize = 2;

/// Overrides the worker count for the whole process (`0` clears the
/// override, falling back to `REDCANE_THREADS` / hardware parallelism).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The number of workers parallel helpers will use.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("REDCANE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `0..len` into at most `workers` contiguous spans of
/// near-equal size (the first `len % workers` spans get one extra item).
/// Span boundaries depend only on `len` and `workers`, so callers that
/// reduce span results in span order stay deterministic.
pub fn spans(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.min(len).max(1);
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Runs `f(chunk_index, chunk)` over consecutive `chunk_len`-sized
/// mutable chunks of `data` (last chunk may be shorter), in parallel
/// when enough workers and chunks are available.
///
/// Chunks are disjoint, so each output element has exactly one writer.
pub fn for_each_chunk_mut<F>(data: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be non-zero");
    let chunks = data.len().div_ceil(chunk_len);
    trace_par(chunks);
    let workers = num_threads();
    if workers <= 1 || chunks < MIN_ITEMS_PER_THREAD * 2 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    let spans = spans(chunks, workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0;
        for &(start, end) in &spans {
            let split = (end * chunk_len).min(consumed + rest.len());
            let (head, tail) = rest.split_at_mut(split - consumed);
            rest = tail;
            consumed = split;
            let f = &f;
            scope.spawn(move || {
                for (off, chunk) in head.chunks_mut(chunk_len).enumerate() {
                    f(start + off, chunk);
                }
                // Explicit flush: the scope unblocks when this closure
                // returns, before TLS destructors would run, and a
                // snapshot may follow immediately.
                trace::flush();
            });
        }
    });
}

/// Maps `0..len` through `f` with one worker-local `state` (built by
/// `init`, e.g. a model clone) per contiguous span, collecting results
/// **in index order**.
///
/// Each index is computed exactly as the serial loop would — worker
/// state is an optimization, never an accumulator — so callers that
/// reduce the returned vector sequentially stay bitwise deterministic
/// at every thread count. Falls back to a single-state serial loop when
/// one worker (or fewer items than workers) is available.
pub fn map_with<S, T, I, F>(len: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    trace_par(len);
    let workers = num_threads().min(len);
    if workers <= 1 {
        let mut state = init();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    let spans = spans(len, workers);
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<T>] = &mut slots;
        let mut consumed = 0;
        for &(start, end) in &spans {
            let (head, tail) = rest.split_at_mut(end - consumed);
            rest = tail;
            consumed = end;
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut state = init();
                for (slot, i) in head.iter_mut().zip(start..end) {
                    *slot = Some(f(&mut state, i));
                }
                // Same flush-before-scope-unblock rule as above.
                trace::flush();
            });
        }
    });
    slots
        .into_iter()
        // lint: allow(panic) — the scoped workers fill every output slot before joining
        .map(|s| s.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-wide override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn spans_cover_range_without_overlap() {
        for len in [0usize, 1, 5, 16, 17] {
            for workers in [1usize, 2, 3, 8, 32] {
                let s = spans(len, workers);
                let mut next = 0;
                for &(a, b) in &s {
                    assert_eq!(a, next);
                    assert!(b >= a);
                    next = b;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn chunked_writes_match_serial() {
        let _guard = LOCK.lock().unwrap();
        let mut expect = vec![0.0f32; 103];
        for (ci, chunk) in expect.chunks_mut(10).enumerate() {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 1000 + j) as f32;
            }
        }
        for threads in [1usize, 4] {
            set_threads(threads);
            let mut got = vec![0.0f32; 103];
            for_each_chunk_mut(&mut got, 10, |ci, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (ci * 1000 + j) as f32;
                }
            });
            assert_eq!(got, expect, "{threads} threads");
        }
        set_threads(0);
    }

    #[test]
    fn map_with_matches_serial_at_any_thread_count() {
        let _guard = LOCK.lock().unwrap();
        let expect: Vec<usize> = (0..103).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 4, 9] {
            set_threads(threads);
            let got = map_with(103, || 3usize, |m, i| i * *m + 1);
            assert_eq!(got, expect, "{threads} threads");
        }
        set_threads(0);
    }

    #[test]
    fn map_with_builds_one_state_per_worker() {
        let _guard = LOCK.lock().unwrap();
        set_threads(4);
        let inits = std::sync::atomic::AtomicUsize::new(0);
        let _ = map_with(16, || inits.fetch_add(1, Ordering::Relaxed), |_, i| i);
        set_threads(0);
        assert!(
            inits.load(Ordering::Relaxed) <= 4,
            "state per span, not per item"
        );
    }

    #[test]
    fn override_beats_env() {
        let _guard = LOCK.lock().unwrap();
        set_threads(3);
        assert_eq!(num_threads(), 3);
        set_threads(0);
        assert!(num_threads() >= 1);
    }
}
