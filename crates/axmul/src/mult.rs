//! Behavioral models of 8-bit unsigned approximate multipliers.
//!
//! Each model is a deterministic function `(u8, u8) -> u16` emulating a
//! known approximate-multiplier microarchitecture at the bit level. The
//! exactness of the emulation varies per family (documented on each type),
//! but every model produces a *real, measurable* arithmetic-error
//! distribution — which is all the ReD-CaNe methodology consumes.

use std::fmt;
use std::sync::Arc;

/// Behavioral contract for an 8×8 unsigned multiplier with a 16-bit output.
///
/// Implementors must be pure functions of their inputs (no internal state),
/// which makes them trivially `Send + Sync`.
pub trait Multiplier8: Send + Sync + fmt::Debug {
    /// Computes the (possibly approximate) product of `a` and `b`.
    fn multiply(&self, a: u8, b: u8) -> u16;

    /// A one-line human-readable description of the microarchitecture.
    fn description(&self) -> String;
}

/// Convenience alias for shared, heap-allocated multiplier models.
pub type SharedMultiplier = Arc<dyn Multiplier8>;

// --------------------------------------------------------------- exact

/// The accurate 8×8 array multiplier (the library's `mul8u_1JFF` role).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExactMultiplier;

impl Multiplier8 for ExactMultiplier {
    fn multiply(&self, a: u8, b: u8) -> u16 {
        a as u16 * b as u16
    }

    fn description(&self) -> String {
        "exact 8x8 array multiplier".to_string()
    }
}

// ----------------------------------------------------------- truncated

/// Truncated multiplier: partial-product bits in the `cut` least-significant
/// columns are omitted entirely (their AND gates and reduction cells are
/// removed from the array).
///
/// The result always under-estimates, by at most
/// `sum_{c < cut} min(c+1, 8, 16-c) * 2^c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedMultiplier {
    /// Number of least-significant product columns removed (`0..=15`).
    pub cut: u8,
}

impl TruncatedMultiplier {
    /// Creates a truncated multiplier dropping the `cut` LSB columns.
    ///
    /// # Panics
    ///
    /// Panics if `cut > 15`.
    pub fn new(cut: u8) -> Self {
        assert!(cut <= 15, "an 8x8 product has 16 columns");
        TruncatedMultiplier { cut }
    }
}

impl Multiplier8 for TruncatedMultiplier {
    fn multiply(&self, a: u8, b: u8) -> u16 {
        let mut acc: u32 = 0;
        for i in 0..8 {
            if (a >> i) & 1 == 0 {
                continue;
            }
            for j in 0..8 {
                if (b >> j) & 1 == 0 {
                    continue;
                }
                let col = i + j;
                if col >= self.cut as usize {
                    acc += 1u32 << col;
                }
            }
        }
        acc.min(u16::MAX as u32) as u16
    }

    fn description(&self) -> String {
        format!("truncated multiplier, {} LSB columns removed", self.cut)
    }
}

// -------------------------------------------------------- broken array

/// Broken-Array Multiplier (BAM): carry-save cells below a diagonal break
/// line are omitted. We model the common horizontal+vertical break: all
/// partial-product bits with column index `< vertical_break` are dropped,
/// plus the bits of the lowest `horizontal_break` rows whose column index is
/// below `vertical_break + horizontal_break`.
///
/// Like all array-breaking schemes it strictly under-estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokenArrayMultiplier {
    /// Columns fully removed (vertical break level).
    pub vertical_break: u8,
    /// Additional rows thinned near the break (horizontal break level).
    pub horizontal_break: u8,
}

impl BrokenArrayMultiplier {
    /// Creates a BAM with the given break levels.
    ///
    /// # Panics
    ///
    /// Panics if `vertical_break > 15` or `horizontal_break > 8`.
    pub fn new(vertical_break: u8, horizontal_break: u8) -> Self {
        assert!(vertical_break <= 15);
        assert!(horizontal_break <= 8);
        BrokenArrayMultiplier {
            vertical_break,
            horizontal_break,
        }
    }
}

impl Multiplier8 for BrokenArrayMultiplier {
    fn multiply(&self, a: u8, b: u8) -> u16 {
        let vb = self.vertical_break as usize;
        let hb = self.horizontal_break as usize;
        let mut acc: u32 = 0;
        for j in 0..8 {
            if (b >> j) & 1 == 0 {
                continue;
            }
            for i in 0..8 {
                if (a >> i) & 1 == 0 {
                    continue;
                }
                let col = i + j;
                let dropped = col < vb || (j < hb && col < vb + hb);
                if !dropped {
                    acc += 1u32 << col;
                }
            }
        }
        acc.min(u16::MAX as u32) as u16
    }

    fn description(&self) -> String {
        format!(
            "broken-array multiplier, vertical break {} / horizontal break {}",
            self.vertical_break, self.horizontal_break
        )
    }
}

// ------------------------------------------------------------ Kulkarni

/// Kulkarni-style underdesigned multiplier built recursively from 2×2
/// blocks whose only inaccuracy is `3 × 3 = 7` (instead of 9), saving the
/// block's largest adder.
///
/// `approx_levels` controls how many of the four 2-bit chunk positions of
/// each operand use the approximate block (starting from the least
/// significant): with 4, every block is approximate (the classic design);
/// smaller values confine the error to low-significance blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KulkarniMultiplier {
    /// How many low-order 2-bit chunk positions (per operand) are
    /// approximate, `0..=4`.
    pub approx_levels: u8,
}

impl KulkarniMultiplier {
    /// Creates the multiplier; `approx_levels` is clamped conceptually to
    /// the operand's four 2-bit chunks.
    ///
    /// # Panics
    ///
    /// Panics if `approx_levels > 4`.
    pub fn new(approx_levels: u8) -> Self {
        assert!(approx_levels <= 4);
        KulkarniMultiplier { approx_levels }
    }

    #[inline]
    fn mul2x2(approx: bool, a: u8, b: u8) -> u8 {
        debug_assert!(a < 4 && b < 4);
        if approx && a == 3 && b == 3 {
            7
        } else {
            a * b
        }
    }
}

impl Multiplier8 for KulkarniMultiplier {
    fn multiply(&self, a: u8, b: u8) -> u16 {
        let mut acc: u32 = 0;
        for ci in 0..4 {
            let ac = (a >> (2 * ci)) & 0b11;
            for cj in 0..4 {
                let bc = (b >> (2 * cj)) & 0b11;
                // A block is approximate when both chunk positions fall in
                // the low `approx_levels` chunks.
                let approx = ci < self.approx_levels as usize && cj < self.approx_levels as usize;
                acc += (Self::mul2x2(approx, ac, bc) as u32) << (2 * (ci + cj));
            }
        }
        acc.min(u16::MAX as u32) as u16
    }

    fn description(&self) -> String {
        format!(
            "Kulkarni 2x2-block multiplier, {} low chunks approximate",
            self.approx_levels
        )
    }
}

// ------------------------------------------------------------- Mitchell

/// Mitchell's logarithmic multiplier: `a·b ≈ antilog2(log2 a + log2 b)`
/// with the classic piecewise-linear log approximation
/// `log2(2^k (1+x)) ≈ k + x`.
///
/// Always under-estimates (by up to ~11 %); the canonical high-savings,
/// high-error design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MitchellLogMultiplier {
    /// Extra LSBs dropped from the mantissa adder (0 = classic Mitchell).
    pub mantissa_trunc: u8,
}

impl MitchellLogMultiplier {
    /// Classic Mitchell multiplier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mitchell multiplier whose mantissa datapath drops `mantissa_trunc`
    /// low bits (a cheaper, noisier variant).
    ///
    /// # Panics
    ///
    /// Panics if `mantissa_trunc > 7`.
    pub fn with_truncation(mantissa_trunc: u8) -> Self {
        assert!(mantissa_trunc <= 7);
        MitchellLogMultiplier { mantissa_trunc }
    }
}

impl Multiplier8 for MitchellLogMultiplier {
    fn multiply(&self, a: u8, b: u8) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        // Fixed-point with 7 fractional bits (operand mantissas are < 1.0
        // over 7 bits after the leading one).
        let ka = 7 - a.leading_zeros() as i32; // floor(log2 a), 0..=7
        let kb = 7 - b.leading_zeros() as i32;
        // mantissa x = a/2^k - 1, in Q7: (a << (7-k)) - 128
        let xa = ((a as u32) << (7 - ka)) - 128;
        let xb = ((b as u32) << (7 - kb)) - 128;
        let mask = !((1u32 << self.mantissa_trunc) - 1);
        let xa = xa & mask;
        let xb = xb & mask;
        let lsum = ((ka + kb) as u32) * 128 + xa + xb; // Q7 log sum
        let k = (lsum >> 7) as i32; // characteristic
        let f = lsum & 0x7f; // fraction, Q7
                             // antilog: (1 + f) * 2^k, with (1+f) in Q7 = 128 + f
        let m = 128 + f;
        let prod = if k >= 7 {
            (m as u64) << (k - 7)
        } else {
            (m as u64) >> (7 - k)
        };
        prod.min(u16::MAX as u64) as u16
    }

    fn description(&self) -> String {
        if self.mantissa_trunc == 0 {
            "Mitchell logarithmic multiplier".to_string()
        } else {
            format!(
                "Mitchell logarithmic multiplier, mantissa truncated by {} bits",
                self.mantissa_trunc
            )
        }
    }
}

// ----------------------------------------------------------------- DRUM

/// DRUM(k): Dynamic Range Unbiased Multiplier. Each operand is reduced to
/// its `k` leading bits (starting at its most-significant one), the cut
/// tail is compensated by forcing the lowest kept bit to 1 (the unbiasing
/// trick), the small `k×k` product is computed exactly and shifted back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrumMultiplier {
    /// Number of leading bits kept per operand (`2..=8`).
    pub k: u8,
}

impl DrumMultiplier {
    /// Creates a DRUM(k) multiplier.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= k <= 8`.
    pub fn new(k: u8) -> Self {
        assert!((2..=8).contains(&k), "DRUM needs 2..=8 kept bits");
        DrumMultiplier { k }
    }

    /// Reduces `v` to its `k` leading bits and re-expands, appending half
    /// an ULP of the discarded tail (the DRUM unbiasing term).
    #[inline]
    fn reduce(&self, v: u8) -> u32 {
        let k = self.k as u32;
        if v == 0 {
            return 0;
        }
        let msb = 7 - v.leading_zeros(); // position of leading one
        if msb < k {
            return v as u32;
        }
        let shift = msb + 1 - k;
        (((v as u32) >> shift) << shift) | (1 << (shift - 1))
    }
}

impl Multiplier8 for DrumMultiplier {
    fn multiply(&self, a: u8, b: u8) -> u16 {
        let prod = (self.reduce(a) as u64) * (self.reduce(b) as u64);
        prod.min(u16::MAX as u64) as u16
    }

    fn description(&self) -> String {
        format!("DRUM({}) dynamic-range unbiased multiplier", self.k)
    }
}

// ----------------------------------------------------------- perforated

/// Partial-product perforation: `count` whole partial-product rows starting
/// at row `start` (rows are indexed by the multiplier-operand bit `j` of
/// `b`) are never generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerforatedMultiplier {
    /// First perforated row.
    pub start: u8,
    /// Number of consecutive perforated rows.
    pub count: u8,
}

impl PerforatedMultiplier {
    /// Creates a perforated multiplier skipping rows `start..start+count`.
    ///
    /// # Panics
    ///
    /// Panics if the perforated range exceeds the 8 rows.
    pub fn new(start: u8, count: u8) -> Self {
        assert!(start as usize + count as usize <= 8);
        PerforatedMultiplier { start, count }
    }
}

impl Multiplier8 for PerforatedMultiplier {
    fn multiply(&self, a: u8, b: u8) -> u16 {
        let mut acc: u32 = 0;
        for j in 0..8u8 {
            if j >= self.start && j < self.start + self.count {
                continue;
            }
            if (b >> j) & 1 == 1 {
                acc += (a as u32) << j;
            }
        }
        acc.min(u16::MAX as u32) as u16
    }

    fn description(&self) -> String {
        format!(
            "partial-product perforation, rows {}..{} skipped",
            self.start,
            self.start + self.count
        )
    }
}

// ----------------------------------------------------------- compressor

/// Approximate column-compressor multiplier: partial-product columns below
/// `approx_cols` are reduced with a carry-less OR tree (each column
/// contributes `OR(bits) << col`), while the remaining columns are summed
/// exactly. Models Dadda trees built from approximate 4:2 compressors that
/// ignore low-column carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressorMultiplier {
    /// Number of low product columns reduced approximately (`0..=15`).
    pub approx_cols: u8,
}

impl CompressorMultiplier {
    /// Creates a compressor multiplier with `approx_cols` approximate
    /// low columns.
    ///
    /// # Panics
    ///
    /// Panics if `approx_cols > 15`.
    pub fn new(approx_cols: u8) -> Self {
        assert!(approx_cols <= 15);
        CompressorMultiplier { approx_cols }
    }
}

impl Multiplier8 for CompressorMultiplier {
    fn multiply(&self, a: u8, b: u8) -> u16 {
        let mut acc: u32 = 0;
        let ac = self.approx_cols as usize;
        // Exact part.
        for i in 0..8 {
            if (a >> i) & 1 == 0 {
                continue;
            }
            for j in 0..8 {
                if (b >> j) & 1 == 0 {
                    continue;
                }
                let col = i + j;
                if col >= ac {
                    acc += 1u32 << col;
                }
            }
        }
        // Approximate part: carry-less OR per column.
        for col in 0..ac.min(15) {
            let mut any = false;
            for i in 0..=col.min(7) {
                let j = col - i;
                if j > 7 {
                    continue;
                }
                if (a >> i) & 1 == 1 && (b >> j) & 1 == 1 {
                    any = true;
                    break;
                }
            }
            if any {
                acc += 1u32 << col;
            }
        }
        acc.min(u16::MAX as u32) as u16
    }

    fn description(&self) -> String {
        format!(
            "approximate-compressor multiplier, {} OR-reduced low columns",
            self.approx_cols
        )
    }
}

// ------------------------------------------------------------------ LUT

/// A 64 KiB lookup table caching any [`Multiplier8`]'s full truth table,
/// for fast bulk simulation (e.g. running a whole layer through the real
/// approximate component instead of the Gaussian noise model).
#[derive(Clone)]
pub struct LutMultiplier {
    table: Box<[u16; 65536]>,
    desc: String,
}

impl LutMultiplier {
    /// Tabulates `inner` exhaustively over all 65 536 input pairs.
    pub fn tabulate(inner: &dyn Multiplier8) -> Self {
        let mut table = vec![0u16; 65536].into_boxed_slice();
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                table[(a as usize) << 8 | b as usize] = inner.multiply(a as u8, b as u8);
            }
        }
        // lint: allow(panic) — the table length is pinned to 65536 entries by the preceding check
        let table: Box<[u16; 65536]> = table.try_into().expect("sized 65536");
        LutMultiplier {
            table,
            desc: format!("LUT of [{}]", inner.description()),
        }
    }
}

impl fmt::Debug for LutMultiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LutMultiplier")
            .field("desc", &self.desc)
            .finish()
    }
}

impl Multiplier8 for LutMultiplier {
    fn multiply(&self, a: u8, b: u8) -> u16 {
        self.table[(a as usize) << 8 | b as usize]
    }

    fn description(&self) -> String {
        self.desc.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_max_abs_err(m: &dyn Multiplier8) -> i32 {
        let mut worst = 0i32;
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                let acc = (a * b) as i32;
                let approx = m.multiply(a as u8, b as u8) as i32;
                worst = worst.max((approx - acc).abs());
            }
        }
        worst
    }

    fn always_under_or_exact(m: &dyn Multiplier8) -> bool {
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                if m.multiply(a as u8, b as u8) > a * b {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn exact_is_exact() {
        let m = ExactMultiplier;
        assert_eq!(exhaustive_max_abs_err(&m), 0);
        assert_eq!(m.multiply(255, 255), 65025);
        assert_eq!(m.multiply(0, 200), 0);
    }

    #[test]
    fn truncated_zero_cut_is_exact() {
        assert_eq!(exhaustive_max_abs_err(&TruncatedMultiplier::new(0)), 0);
    }

    #[test]
    fn truncated_underestimates_and_grows_with_cut() {
        let e2 = exhaustive_max_abs_err(&TruncatedMultiplier::new(2));
        let e4 = exhaustive_max_abs_err(&TruncatedMultiplier::new(4));
        let e6 = exhaustive_max_abs_err(&TruncatedMultiplier::new(6));
        assert!(e2 > 0 && e2 < e4 && e4 < e6, "{e2} {e4} {e6}");
        assert!(always_under_or_exact(&TruncatedMultiplier::new(4)));
    }

    #[test]
    fn truncated_error_bound() {
        // Dropping columns < cut can lose at most sum over dropped
        // partial-product bits; for cut=3 that is 1*1 + 2*2 + 3*4 = 17.
        assert!(exhaustive_max_abs_err(&TruncatedMultiplier::new(3)) <= 17);
    }

    #[test]
    #[should_panic]
    fn truncated_rejects_excessive_cut() {
        TruncatedMultiplier::new(16);
    }

    #[test]
    fn broken_array_underestimates() {
        let m = BrokenArrayMultiplier::new(5, 2);
        assert!(always_under_or_exact(&m));
        assert!(exhaustive_max_abs_err(&m) > 0);
    }

    #[test]
    fn broken_array_zero_breaks_is_exact() {
        assert_eq!(exhaustive_max_abs_err(&BrokenArrayMultiplier::new(0, 0)), 0);
    }

    #[test]
    fn broken_array_error_grows_with_break() {
        let e4 = exhaustive_max_abs_err(&BrokenArrayMultiplier::new(4, 0));
        let e8 = exhaustive_max_abs_err(&BrokenArrayMultiplier::new(8, 0));
        assert!(e4 < e8);
    }

    #[test]
    fn kulkarni_zero_levels_is_exact() {
        assert_eq!(exhaustive_max_abs_err(&KulkarniMultiplier::new(0)), 0);
    }

    #[test]
    fn kulkarni_classic_3x3_is_7() {
        let m = KulkarniMultiplier::new(4);
        assert_eq!(m.multiply(3, 3), 7);
        // Errors only when both operands have 0b11 chunks.
        assert_eq!(m.multiply(2, 3), 6);
        assert_eq!(m.multiply(4, 4), 16);
        assert!(always_under_or_exact(&m));
    }

    #[test]
    fn kulkarni_error_grows_with_levels() {
        let e1 = exhaustive_max_abs_err(&KulkarniMultiplier::new(1));
        let e4 = exhaustive_max_abs_err(&KulkarniMultiplier::new(4));
        assert!(e1 < e4);
    }

    #[test]
    fn mitchell_exact_on_powers_of_two() {
        let m = MitchellLogMultiplier::new();
        for &(a, b) in &[(1u8, 1u8), (2, 4), (16, 8), (128, 2), (64, 64)] {
            assert_eq!(m.multiply(a, b) as u32, a as u32 * b as u32, "{a}x{b}");
        }
    }

    #[test]
    fn mitchell_underestimates_within_11_percent() {
        let m = MitchellLogMultiplier::new();
        for a in 1..=255u16 {
            for b in 1..=255u16 {
                let acc = (a * b) as f64;
                let approx = m.multiply(a as u8, b as u8) as f64;
                assert!(approx <= acc + 1.0, "{a}x{b}: {approx} > {acc}");
                assert!(
                    approx >= acc * 0.885 - 2.0,
                    "{a}x{b}: {approx} too far below {acc}"
                );
            }
        }
    }

    #[test]
    fn mitchell_zero_operand_is_zero() {
        let m = MitchellLogMultiplier::new();
        assert_eq!(m.multiply(0, 123), 0);
        assert_eq!(m.multiply(77, 0), 0);
    }

    #[test]
    fn mitchell_truncated_is_noisier() {
        let base = exhaustive_max_abs_err(&MitchellLogMultiplier::new());
        let trunc = exhaustive_max_abs_err(&MitchellLogMultiplier::with_truncation(5));
        assert!(trunc >= base);
    }

    #[test]
    fn drum_is_exact_for_small_operands() {
        let m = DrumMultiplier::new(4);
        for a in 0..16u8 {
            for b in 0..16u8 {
                assert_eq!(m.multiply(a, b), a as u16 * b as u16);
            }
        }
    }

    #[test]
    fn drum_relative_error_bounded() {
        // DRUM(k) has bounded relative error ~2^-(k-1).
        let m = DrumMultiplier::new(4);
        for a in 1..=255u16 {
            for b in 1..=255u16 {
                let acc = (a * b) as f64;
                let approx = m.multiply(a as u8, b as u8) as f64;
                let rel = (approx - acc).abs() / acc;
                assert!(rel < 0.17, "{a}x{b}: rel {rel}");
            }
        }
    }

    #[test]
    fn drum_error_shrinks_with_k() {
        let e3 = exhaustive_max_abs_err(&DrumMultiplier::new(3));
        let e6 = exhaustive_max_abs_err(&DrumMultiplier::new(6));
        assert!(e6 < e3);
    }

    #[test]
    fn drum_8_is_exact() {
        assert_eq!(exhaustive_max_abs_err(&DrumMultiplier::new(8)), 0);
    }

    #[test]
    fn perforated_skips_rows() {
        let m = PerforatedMultiplier::new(0, 1);
        // b = 1 uses only row 0, which is skipped.
        assert_eq!(m.multiply(200, 1), 0);
        // b = 2 uses row 1, kept.
        assert_eq!(m.multiply(200, 2), 400);
        assert!(always_under_or_exact(&m));
    }

    #[test]
    fn perforated_zero_count_is_exact() {
        assert_eq!(exhaustive_max_abs_err(&PerforatedMultiplier::new(0, 0)), 0);
    }

    #[test]
    #[should_panic]
    fn perforated_rejects_out_of_range() {
        PerforatedMultiplier::new(6, 3);
    }

    #[test]
    fn compressor_zero_cols_is_exact() {
        assert_eq!(exhaustive_max_abs_err(&CompressorMultiplier::new(0)), 0);
    }

    #[test]
    fn compressor_error_grows_with_cols() {
        let e4 = exhaustive_max_abs_err(&CompressorMultiplier::new(4));
        let e8 = exhaustive_max_abs_err(&CompressorMultiplier::new(8));
        let e12 = exhaustive_max_abs_err(&CompressorMultiplier::new(12));
        assert!(e4 <= e8 && e8 <= e12);
        assert!(e12 > 0);
    }

    #[test]
    fn lut_matches_inner_exhaustively() {
        let inner = MitchellLogMultiplier::new();
        let lut = LutMultiplier::tabulate(&inner);
        for a in (0..=255u16).step_by(7) {
            for b in 0..=255u16 {
                assert_eq!(
                    lut.multiply(a as u8, b as u8),
                    inner.multiply(a as u8, b as u8)
                );
            }
        }
        assert!(lut.description().contains("Mitchell"));
    }

    #[test]
    fn descriptions_are_informative() {
        assert!(TruncatedMultiplier::new(3).description().contains('3'));
        assert!(DrumMultiplier::new(4).description().contains('4'));
        assert!(BrokenArrayMultiplier::new(2, 1).description().contains('2'));
    }
}
