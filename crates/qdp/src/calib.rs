//! Calibration: fixing per-site quantization ranges from the real
//! input distribution.
//!
//! The paper quantizes each array with ranges observed on **real**
//! inputs flowing through the trained network (Table IV's "Real"
//! column), not per-sample min/max. [`CalibrationObserver`] is an
//! [`Injector`] that rides the existing tap points — the same hooks
//! the noise models use — and feeds every tensor it sees into a
//! [`RangeTracker`] keyed by `(layer, operation kind)`. After a sweep
//! over clean calibration inputs, [`CalibrationObserver::params`]
//! turns a site's observed range into fixed [`QuantParams`] for the
//! quantized datapath.

use std::collections::HashMap;

use redcane_capsnet::inject::{Injector, OpKind, OpSite};
use redcane_fxp::{FxpError, QuantParams, RangeTracker};
use redcane_tensor::Tensor;

/// Records running min/max per `(layer name, op kind)` site across any
/// number of clean forward passes.
///
/// Sites **inside** dynamic routing are tracked separately from sites
/// outside it: the routing weighted sum `s_j = Σᵢ k·û` shares the
/// `(ClassCaps, MacOutput)` naming with the vote transform but spans a
/// range up to `I×` wider, and merging the two would coarsen the vote
/// codes for nothing.
#[derive(Debug, Clone, Default)]
pub struct CalibrationObserver {
    trackers: HashMap<(String, OpKind, bool), RangeTracker>,
}

impl CalibrationObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tracker for a non-routing site, if it was visited.
    pub fn tracker(&self, layer: &str, kind: OpKind) -> Option<&RangeTracker> {
        self.trackers.get(&(layer.to_string(), kind, false))
    }

    /// The tracker for a site inside dynamic routing (merged across
    /// iterations), if it was visited.
    pub fn routing_tracker(&self, layer: &str, kind: OpKind) -> Option<&RangeTracker> {
        self.trackers.get(&(layer.to_string(), kind, true))
    }

    /// Number of distinct sites observed.
    pub fn site_count(&self) -> usize {
        self.trackers.len()
    }

    /// Quantization parameters covering a non-routing site's observed
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`FxpError::InvalidRange`] if the site was never visited
    /// (reported with an empty range), or any error from
    /// [`RangeTracker::to_params`].
    pub fn params(&self, layer: &str, kind: OpKind, bits: u8) -> Result<QuantParams, FxpError> {
        Self::tracker_params(self.tracker(layer, kind), bits)
    }

    /// Quantization parameters covering an in-routing site's observed
    /// range (merged across routing iterations).
    ///
    /// # Errors
    ///
    /// As [`CalibrationObserver::params`].
    pub fn routing_params(
        &self,
        layer: &str,
        kind: OpKind,
        bits: u8,
    ) -> Result<QuantParams, FxpError> {
        Self::tracker_params(self.routing_tracker(layer, kind), bits)
    }

    fn tracker_params(tracker: Option<&RangeTracker>, bits: u8) -> Result<QuantParams, FxpError> {
        match tracker {
            Some(t) => t.to_params(bits),
            None => Err(FxpError::InvalidRange {
                min: f32::INFINITY,
                max: f32::NEG_INFINITY,
            }),
        }
    }
}

impl Injector for CalibrationObserver {
    /// Requests [`OpKind::MacInput`] taps too: MAC inputs are exactly
    /// the arrays the quantized datapath feeds to the multipliers.
    fn observes_inputs(&self) -> bool {
        true
    }

    fn inject(&mut self, site: &OpSite, tensor: &mut Tensor) {
        self.trackers
            .entry((
                site.layer_name.clone(),
                site.kind,
                site.routing_iter.is_some(),
            ))
            .or_default()
            .observe(tensor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_ranges_per_site_and_merges_visits() {
        let mut obs = CalibrationObserver::new();
        let site = OpSite::new(0, "Conv1", OpKind::MacOutput);
        obs.inject(&site, &mut Tensor::from_slice(&[0.0, 2.0]));
        obs.inject(&site, &mut Tensor::from_slice(&[-1.0, 1.0]));
        let t = obs.tracker("Conv1", OpKind::MacOutput).unwrap();
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.max(), 2.0);
        let p = obs.params("Conv1", OpKind::MacOutput, 8).unwrap();
        assert_eq!(p.quantize(-1.0), 0);
        assert_eq!(p.quantize(2.0), 255);
    }

    #[test]
    fn distinct_sites_get_distinct_trackers() {
        let mut obs = CalibrationObserver::new();
        obs.inject(
            &OpSite::new(0, "Conv1", OpKind::MacOutput),
            &mut Tensor::from_slice(&[5.0]),
        );
        obs.inject(
            &OpSite::new(1, "ClassCaps", OpKind::Softmax),
            &mut Tensor::from_slice(&[0.25]),
        );
        assert_eq!(obs.site_count(), 2);
        assert!(obs.tracker("Conv1", OpKind::Softmax).is_none());
    }

    #[test]
    fn routing_sites_are_tracked_apart_from_layer_sites() {
        let mut obs = CalibrationObserver::new();
        // The vote tensor (outside routing) and the weighted sum
        // (inside routing) share (layer, kind) but not scale.
        obs.inject(
            &OpSite::new(2, "ClassCaps", OpKind::MacOutput),
            &mut Tensor::from_slice(&[-1.0, 1.0]),
        );
        obs.inject(
            &OpSite::routing(2, "ClassCaps", OpKind::MacOutput, 0),
            &mut Tensor::from_slice(&[-40.0, 40.0]),
        );
        let votes = obs.tracker("ClassCaps", OpKind::MacOutput).unwrap();
        assert_eq!((votes.min(), votes.max()), (-1.0, 1.0));
        let s = obs.routing_tracker("ClassCaps", OpKind::MacOutput).unwrap();
        assert_eq!((s.min(), s.max()), (-40.0, 40.0));
        assert!(obs
            .routing_params("ClassCaps", OpKind::MacOutput, 8)
            .is_ok());
    }

    #[test]
    fn unvisited_site_errors() {
        let obs = CalibrationObserver::new();
        assert!(obs.params("Nope", OpKind::MacOutput, 8).is_err());
    }

    #[test]
    fn observes_inputs_opt_in() {
        assert!(CalibrationObserver::new().observes_inputs());
    }
}
