//! Tiny flag-parsing helpers shared by the `probe` and `pipeline`
//! binaries, so their flags parse and fail identically.

use std::fmt::Display;
use std::str::FromStr;

/// Pulls the value following `flag` from the argument stream.
///
/// # Errors
///
/// Returns a user-facing message when the stream is exhausted.
pub fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next()
        .ok_or_else(|| format!("{flag} requires a value"))
}

/// Pulls and parses the value following `flag`.
///
/// # Errors
///
/// Returns a user-facing message when the stream is exhausted or the
/// value does not parse as `T`.
pub fn next_parsed<T>(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<T, String>
where
    T: FromStr,
    T::Err: Display,
{
    next_value(args, flag)?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

/// Rejects a zero count with a consistent message.
///
/// # Errors
///
/// Returns a user-facing message when `value` is zero.
pub fn require_nonzero(value: usize, flag: &str) -> Result<usize, String> {
    if value == 0 {
        Err(format!("{flag} must be at least 1"))
    } else {
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(items: &[&str]) -> impl Iterator<Item = String> {
        items
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn next_parsed_reads_and_reports() {
        let mut it = args(&["42", "nope"]);
        assert_eq!(next_parsed::<usize>(&mut it, "--n"), Ok(42));
        assert!(next_parsed::<usize>(&mut it, "--n")
            .unwrap_err()
            .starts_with("--n:"));
        assert_eq!(
            next_parsed::<usize>(&mut it, "--n"),
            Err("--n requires a value".to_string())
        );
    }

    #[test]
    fn require_nonzero_gates_zero() {
        assert_eq!(require_nonzero(3, "--train"), Ok(3));
        assert_eq!(
            require_nonzero(0, "--train"),
            Err("--train must be at least 1".to_string())
        );
    }
}
