//! The `qdp` bench mode: measured vs noise-predicted accuracy drop,
//! per approximate multiplier **and for the heterogeneous Step-6
//! design**, for both of the paper's architectures.
//!
//! For every component of the axmul library and every selected
//! architecture (CapsNet and DeepCaps) this scores the same uniform
//! [`DatapathAssignment`] on the two [`AccuracyBackend`]s:
//!
//! 1. **Measured** ([`QuantMeasured`]) — end-to-end inference through
//!    `redcane-qdp`'s 8-bit datapath with the component's behavioral
//!    model serving every MAC multiply (ground truth);
//! 2. **Predicted** ([`NoisePredicted`]) — the float network with the
//!    paper's Gaussian noise model (Eq. 3) at the MAC-output group,
//!    parameterized by the component's `(NA, NM)` characterized over
//!    the **empirical** operand distribution observed during
//!    calibration (the paper's "Real ΔX" column).
//!
//! With `heterogeneous` enabled (the default), each architecture
//! additionally runs the full ReD-CaNe methodology and re-scores the
//! winning per-layer design on the measured backend
//! ([`RedCaNe::run_with_measured`]), emitting one extra JSON line whose
//! `predicted_drop_pp` / `measured_drop_pp` close the paper's
//! validation loop for the *heterogeneous* output — not just
//! single-component sweeps.
//!
//! One JSON line per `(architecture, component-or-design)`; schema v3.
//! The per-component evaluations fan out over `redcane_tensor::par`
//! workers sharing one lowered [`QModel`] and one [`LutCache`] (64 KiB
//! per distinct multiplier); every quantity derives only from the seed,
//! the architecture tag and the component index, so the JSON output is
//! byte-identical at every `REDCANE_THREADS` setting.

use std::path::PathBuf;
use std::time::Instant;

use redcane::datapath::{AccuracyBackend, DatapathAssignment, NoisePredicted};
use redcane::report::group_slug;
use redcane::report::json::Value;
use redcane::{ApproxDesign, MethodologyConfig, RedCaNe, SelectionConfig, SweepConfig};
use redcane_artifacts::{
    fingerprint, load_or_train, ArtifactKey, ArtifactPayload, ArtifactStore, ComponentNoise,
    Provenance,
};
use redcane_axmul::library::{ComponentEntry, MultiplierLibrary};
use redcane_axmul::{InputDistribution, LutCache, NoiseParams};
use redcane_capsnet::{
    evaluate_clean, train, CapsModel, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig, TrainConfig,
};
use redcane_datasets::{generate, Benchmark, Dataset, DatasetPair, GenerateConfig};
use redcane_qdp::{CalibrationObserver, QModel, QuantMeasured, QuantRanges};
use redcane_tensor::{par, TensorRng};
use redcane_trace as trace;

/// Values retained per MAC-input site for the empirical operand pools.
const CALIB_SAMPLES_PER_SITE: usize = 512;
/// Cap on the quantized-weight operand pool.
pub(crate) const WEIGHT_POOL_CODES: usize = 4096;

/// Which architecture a `qdp` sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QdpArch {
    /// The original CapsNet (Sabour et al.), small config.
    CapsNet,
    /// The 17-layer DeepCaps (Rajasegaran et al.), small config.
    DeepCaps,
}

impl QdpArch {
    /// Stable lower-case label used in the JSON schema and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            QdpArch::CapsNet => "capsnet",
            QdpArch::DeepCaps => "deepcaps",
        }
    }

    /// Stable seed offset tied to the architecture's *identity* (not
    /// its position in `QdpConfig::archs`), so `--arch deepcaps`
    /// reproduces exactly the deepcaps rows of an `--arch both` run at
    /// the same seed.
    pub(crate) fn seed_tag(&self) -> u64 {
        match self {
            QdpArch::CapsNet => 0,
            QdpArch::DeepCaps => 1,
        }
    }
}

/// Configuration of a `qdp` comparison run; fully determined by its
/// fields, so equal configs give equal outcomes.
#[derive(Debug, Clone)]
pub struct QdpConfig {
    /// Which benchmark family to synthesize.
    pub benchmark: Benchmark,
    /// Master seed (dataset, init, training, characterization, noise).
    pub seed: u64,
    /// Architectures to sweep, in output order.
    pub archs: Vec<QdpArch>,
    /// Training samples to generate.
    pub train: usize,
    /// Test samples to generate.
    pub test: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Clean training inputs swept through the float network to
    /// calibrate the quantization ranges.
    pub calib_samples: usize,
    /// Test-subset size both the measured and predicted evaluations
    /// run on.
    pub eval_samples: usize,
    /// Restrict the sweep to these component names (`None` = the whole
    /// 35-entry library).
    pub components: Option<Vec<String>>,
    /// Samples per component `(NA, NM)` characterization.
    pub characterization_samples: usize,
    /// Also run the six-step methodology per architecture and re-score
    /// its heterogeneous Step-6 design on the measured backend (one
    /// extra JSON line per architecture).
    pub heterogeneous: bool,
    /// Trained-artifact store directory: restore trained weights,
    /// calibrated ranges, the characterized `(NA, NM)` table and the
    /// calibration operand pool when a valid entry exists; train and
    /// persist otherwise. `None` disables the store.
    pub artifacts: Option<PathBuf>,
}

impl QdpConfig {
    /// The full seeded sweep: every library component on both
    /// architectures, models trained well above chance.
    pub fn smoke() -> Self {
        QdpConfig {
            benchmark: Benchmark::MnistLike,
            seed: 1,
            archs: vec![QdpArch::CapsNet, QdpArch::DeepCaps],
            train: 600,
            test: 150,
            epochs: 6,
            batch_size: 16,
            lr: 2e-3,
            calib_samples: 64,
            eval_samples: 40,
            components: None,
            characterization_samples: 4000,
            heterogeneous: true,
            artifacts: None,
        }
    }

    /// CI-sized: the exact component plus one approximate component on
    /// both architectures, scaled-down training.
    pub fn quick() -> Self {
        QdpConfig {
            train: 200,
            test: 60,
            epochs: 3,
            calib_samples: 32,
            eval_samples: 30,
            components: Some(vec!["mul8u_1JFF".to_string(), "mul8u_NGR".to_string()]),
            characterization_samples: 2000,
            ..QdpConfig::smoke()
        }
    }
}

impl Default for QdpConfig {
    fn default() -> Self {
        QdpConfig::smoke()
    }
}

/// One component's measured-vs-predicted comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct QdpRow {
    /// Library component name (`mul8u_…`).
    pub component: String,
    /// Component power in µW (library metadata).
    pub power_uw: f64,
    /// Characterized noise magnitude (empirical operands).
    pub nm: f64,
    /// Characterized noise average (empirical operands).
    pub na: f64,
    /// Accuracy of the quantized datapath running this component.
    pub measured_accuracy: f64,
    /// Accuracy of the float network under the component's noise model.
    pub predicted_accuracy: f64,
}

/// One architecture's full sweep: float baseline + per-component rows
/// + (optionally) the heterogeneous Step-6 design's re-score.
#[derive(Debug, Clone)]
pub struct QdpArchOutcome {
    /// The architecture swept.
    pub arch: QdpArch,
    /// Model display name.
    pub model_name: String,
    /// Float (accurate, full-precision) accuracy on the eval subset —
    /// the baseline both drops are measured against.
    pub float_accuracy: f64,
    /// Per-component rows, in library order.
    pub rows: Vec<QdpRow>,
    /// The methodology's winning heterogeneous design, scored on both
    /// backends (`None` unless `heterogeneous` was configured).
    pub design: Option<ApproxDesign>,
    /// Whether this architecture's model was trained this run or
    /// restored from the artifact store. Deliberately **not** part of
    /// the JSON schema: cold and warm runs must emit byte-identical
    /// artifacts.
    pub provenance: Provenance,
}

impl QdpArchOutcome {
    /// Measured accuracy drop for `row`, in percentage points.
    pub fn measured_drop_pp(&self, row: &QdpRow) -> f64 {
        (self.float_accuracy - row.measured_accuracy) * 100.0
    }

    /// Noise-predicted accuracy drop for `row`, in percentage points.
    pub fn predicted_drop_pp(&self, row: &QdpRow) -> f64 {
        (self.float_accuracy - row.predicted_accuracy) * 100.0
    }
}

/// The result of one full `qdp` comparison run.
#[derive(Debug, Clone)]
pub struct QdpOutcome {
    /// The configuration that produced it.
    pub config: QdpConfig,
    /// One sweep per configured architecture, in `config.archs` order.
    pub archs: Vec<QdpArchOutcome>,
    /// Total wall-clock seconds.
    pub total_s: f64,
}

/// Runs dataset generation → training → calibration → the
/// per-component measured/predicted sweep (and the heterogeneous
/// design re-score) for every configured architecture,
/// deterministically from `cfg.seed` (and independent of the
/// worker-thread count).
///
/// # Panics
///
/// Panics on empty train/test/eval/arch settings, on a component name
/// not in the library, or if calibration fails (it cannot on finite
/// trained weights).
pub fn run_qdp(cfg: &QdpConfig) -> QdpOutcome {
    assert!(cfg.train > 0, "qdp needs training samples");
    assert!(
        cfg.test > 0 && cfg.eval_samples > 0,
        "qdp needs test samples"
    );
    assert!(cfg.calib_samples > 0, "qdp needs calibration samples");
    assert!(!cfg.archs.is_empty(), "qdp needs at least one architecture");
    let t0 = Instant::now();

    let pair = generate(
        cfg.benchmark,
        &GenerateConfig {
            train: cfg.train,
            test: cfg.test,
            seed: cfg.seed,
        },
    );
    let library = MultiplierLibrary::evo_approx_like();
    // One 64 KiB table per library component, tabulated once and shared
    // by every architecture's backend (the cache is model-independent;
    // cloning only copies Arc handles).
    let luts = LutCache::tabulate_all(&library);
    let entries: Vec<&ComponentEntry> = match &cfg.components {
        Some(names) => names
            .iter()
            .map(|n| {
                library
                    .find(n)
                    .unwrap_or_else(|| panic!("unknown component '{n}'"))
            })
            .collect(),
        None => library.iter().collect(),
    };

    let (channels, height, _) = cfg.benchmark.geometry();
    let store = cfg.artifacts.as_ref().map(ArtifactStore::new);
    let archs = cfg
        .archs
        .iter()
        .map(|&arch| {
            let mut rng = TensorRng::from_seed(
                cfg.seed
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add(7 + arch.seed_tag()),
            );
            match arch {
                QdpArch::CapsNet => {
                    let model = CapsNet::new(&CapsNetConfig::small(channels, height), &mut rng);
                    sweep_arch(
                        cfg,
                        arch,
                        model,
                        &pair,
                        &library,
                        &luts,
                        &entries,
                        store.as_ref(),
                    )
                }
                QdpArch::DeepCaps => {
                    let model = DeepCaps::new(&DeepCapsConfig::small(channels, height), &mut rng);
                    sweep_arch(
                        cfg,
                        arch,
                        model,
                        &pair,
                        &library,
                        &luts,
                        &entries,
                        store.as_ref(),
                    )
                }
            }
        })
        .collect();

    QdpOutcome {
        config: cfg.clone(),
        archs,
        total_s: t0.elapsed().as_secs_f64(),
    }
}

/// The training/calibration knobs the `qdp` and `faults` benches
/// share. Both derive the same artifact key from them, so one trained
/// artifact — weights, calibrated ranges, the calibration operand
/// pool, the `(NA, NM)` noise table and the fault-characterization
/// table — serves either bench, whichever trains first.
pub(crate) struct TrainKnobs<'a> {
    pub benchmark: Benchmark,
    pub seed: u64,
    pub train: usize,
    pub test: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub calib_samples: usize,
    pub characterization_samples: usize,
    pub library: &'a MultiplierLibrary,
}

impl<'a> TrainKnobs<'a> {
    fn from_qdp(cfg: &QdpConfig, library: &'a MultiplierLibrary) -> Self {
        TrainKnobs {
            benchmark: cfg.benchmark,
            seed: cfg.seed,
            train: cfg.train,
            test: cfg.test,
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            calib_samples: cfg.calib_samples,
            characterization_samples: cfg.characterization_samples,
            library,
        }
    }

    /// The shared artifact key. The fingerprint pins every knob the
    /// trained content depends on; the component subsets, fault grids
    /// and evaluation knobs deliberately don't invalidate it.
    pub(crate) fn key(&self, arch: QdpArch) -> ArtifactKey {
        ArtifactKey::new(
            arch.label(),
            self.benchmark.name(),
            self.seed,
            self.epochs,
            fingerprint(&format!(
                "qdp-v1;train={};test={};batch={};lr={:08x};calib={}",
                self.train,
                self.test,
                self.batch_size,
                self.lr.to_bits(),
                self.calib_samples
            )),
        )
    }

    /// The producer `load_or_train` falls back to on a store miss:
    /// train, calibrate, then characterize the WHOLE multiplier library
    /// (so later runs with any `--components` subset restore their
    /// `(NA, NM)` rows from the same table) and the canonical
    /// fault-model set over this run's empirical operand pools.
    pub(crate) fn produce<M: CapsModel + Clone + Send + Sync>(
        &self,
        m: &mut M,
        pair: &DatasetPair,
    ) -> ArtifactPayload {
        let report = train(
            m,
            &pair.train,
            &TrainConfig {
                epochs: self.epochs,
                batch_size: self.batch_size,
                lr: self.lr,
                seed: self.seed ^ 0x71a1,
                verbose: false,
            },
        );
        // Calibrate through the generic pipeline, retaining MAC-input
        // samples for the empirical operand pools.
        let mut obs = CalibrationObserver::with_samples(CALIB_SAMPLES_PER_SITE);
        for sample in pair.train.samples.iter().take(self.calib_samples) {
            let _ = m.forward(&sample.image, &mut obs);
        }
        let ranges = obs
            .ranges(8)
            .expect("calibration succeeds on trained activations");
        let activations = obs.sampled_input_codes(&ranges);
        let qmodel = QModel::lower(m, &ranges).expect("every site calibrated");
        let dist = operand_distribution(activations.clone(), &qmodel);
        let noise_table = self
            .library
            .iter()
            .map(|entry| {
                let np =
                    entry.characterize(&dist, self.characterization_samples, self.seed ^ 0xc0de);
                ComponentNoise {
                    component: entry.name().to_string(),
                    samples: self.characterization_samples as u64,
                    na: np.na,
                    nm: np.nm,
                }
            })
            .collect();
        let weights = qmodel.weight_code_sample(WEIGHT_POOL_CODES);
        let fault_table = crate::faults::characterize_canonical(
            &activations,
            &weights,
            self.characterization_samples,
            self.seed ^ 0xfa17,
        );
        ArtifactPayload {
            epoch_losses: report.epoch_losses,
            train_accuracy: report.train_accuracy,
            ranges: ranges.to_entries(),
            noise_table,
            activation_codes: activations,
            fault_table,
        }
    }
}

/// Trains (or restores), lowers **once**, and sweeps one architecture.
/// Generic over the concrete model so training and the noise-injected
/// evaluation reuse the shared capsnet machinery.
#[allow(clippy::too_many_arguments)]
fn sweep_arch<M: CapsModel + Clone + Send + Sync + 'static>(
    cfg: &QdpConfig,
    arch: QdpArch,
    mut model: M,
    pair: &DatasetPair,
    library: &MultiplierLibrary,
    luts: &LutCache,
    entries: &[&ComponentEntry],
    store: Option<&ArtifactStore>,
) -> QdpArchOutcome {
    let _arch_span = trace::span(arch.label());
    // Everything seed-determined and expensive goes through the
    // artifact store: trained weights, calibrated ranges, the
    // calibration operand pool and the full library's characterized
    // `(NA, NM)` table. The fingerprint pins the training/calibration
    // knobs; the component subset and evaluation knobs deliberately
    // don't invalidate it.
    let knobs = TrainKnobs::from_qdp(cfg, library);
    let key = knobs.key(arch);
    let (payload, provenance) = {
        let _s = trace::span("train");
        load_or_train(store, &key, &mut model, |m| knobs.produce(m, pair))
    };

    let eval = pair.test.take(cfg.eval_samples);
    let float_accuracy = evaluate_clean(&model, &eval);
    eprintln!(
        "[qdp] {} {} — float baseline {:.3} on {} samples",
        provenance.label(),
        model.name(),
        float_accuracy,
        eval.len()
    );

    // Lower the (trained or restored) network once; rebuild the
    // paper's "Real ΔX" operand distribution from the stored activation
    // pool plus the (deterministic) quantized weight codes.
    let lower_span = trace::span("lower");
    let ranges = QuantRanges::from_entries(&payload.ranges);
    let qmodel = QModel::lower(&model, &ranges).expect("every site calibrated");
    drop(lower_span);
    let dist = operand_distribution(payload.activation_codes.clone(), &qmodel);

    // Per-component noise parameters come from the stored table; a row
    // missing there (e.g. the table was characterized with a different
    // sample count) is characterized live — same numbers, just not
    // cached.
    let nanm: Vec<NoiseParams> = entries
        .iter()
        .map(|entry| {
            payload
                .noise_table
                .iter()
                .find(|c| {
                    c.component == entry.name() && c.samples == cfg.characterization_samples as u64
                })
                .map(|c| NoiseParams { na: c.na, nm: c.nm })
                .unwrap_or_else(|| {
                    entry.characterize(&dist, cfg.characterization_samples, cfg.seed ^ 0xc0de)
                })
        })
        .collect();

    // One lowered program + the shared component tables: every uniform
    // row, the design re-score, and every worker thread use the same
    // cache.
    let measured = QuantMeasured::new(qmodel, luts.clone());

    let rows = {
        let _s = trace::span("score");
        sweep_components(
            cfg,
            arch.seed_tag(),
            &model,
            &measured,
            &eval,
            entries,
            &nanm,
        )
    };
    for row in &rows {
        eprintln!(
            "[qdp] {} {:<14} nm {:.5}  measured {:.3}  predicted {:.3}",
            arch.label(),
            row.component,
            row.nm,
            row.measured_accuracy,
            row.predicted_accuracy
        );
    }

    // The heterogeneous loop: run the six-step methodology on the eval
    // subset and score its winning per-layer design on BOTH backends
    // through the same trait.
    let design = cfg.heterogeneous.then(|| {
        let _s = trace::span("methodology");
        let methodology = RedCaNe::with_library(
            MethodologyConfig {
                sweep: SweepConfig {
                    nm_values: vec![0.5, 0.05, 0.005],
                    na: 0.0,
                    seed: cfg.seed ^ 0x6e01 ^ (arch.seed_tag() << 16),
                    max_test_samples: None,
                    threads: par::num_threads(),
                },
                selection: SelectionConfig {
                    characterization_samples: cfg.characterization_samples,
                    seed: cfg.seed ^ 0xc0de,
                    ..Default::default()
                },
                input_distribution: Some(dist.clone()),
            },
            library.clone(),
        );
        let design = methodology
            .run_with_measured(&model, &eval, &measured)
            .design;
        eprintln!(
            "[qdp] {} heterogeneous   predicted drop {:+.2} pp  measured drop {:+.2} pp  \
             (mean power saving {:.1}%)",
            arch.label(),
            design.predicted_drop_pp(),
            design.measured_drop_pp().expect("measured backend ran"),
            design.mean_power_saving * 100.0,
        );
        design
    });

    QdpArchOutcome {
        arch,
        model_name: model.name(),
        float_accuracy,
        rows,
        design,
        provenance,
    }
}

/// The empirical operand distribution for component characterization:
/// quantized activation codes retained during calibration against the
/// lowered program's quantized weight codes; uniform when either pool
/// is empty.
pub(crate) fn operand_distribution(activations: Vec<u8>, qmodel: &QModel) -> InputDistribution {
    let weights = qmodel.weight_code_sample(WEIGHT_POOL_CODES);
    if activations.is_empty() || weights.is_empty() {
        InputDistribution::Uniform
    } else {
        InputDistribution::Empirical {
            activations,
            weights,
        }
    }
}

/// The per-component measured/predicted evaluations, fanned out over
/// [`par::map_with`] workers. Every per-component quantity derives
/// only from `cfg.seed`, the architecture tag and the component
/// index — never from the worker that computed it — so the rows are
/// byte-identical at every thread count.
fn sweep_components<M: CapsModel + Clone + Send + Sync>(
    cfg: &QdpConfig,
    arch_tag: u64,
    model: &M,
    measured: &QuantMeasured,
    eval: &Dataset,
    entries: &[&ComponentEntry],
    nanm: &[NoiseParams],
) -> Vec<QdpRow> {
    par::map_with(
        entries.len(),
        || (),
        |(), idx| {
            let entry = entries[idx];
            let assignment = DatapathAssignment::uniform(entry.name());
            // Measured: the component inside every MAC of the shared
            // lowered datapath (ground truth).
            let measured_accuracy = measured
                .evaluate(model, eval, &assignment)
                .expect("uniform assignment covers every site");
            // Predicted: the same assignment on the noise backend, with
            // this component's characterized (NA, NM) from the shared
            // (possibly artifact-restored) table.
            let np = nanm[idx];
            let predictor = NoisePredicted::new(cfg.seed ^ 0x5eed ^ idx as u64 ^ (arch_tag << 32))
                .with_component(entry.name(), np.nm, np.na);
            let predicted_accuracy = predictor
                .evaluate(model, eval, &assignment)
                .expect("component characterized");
            QdpRow {
                component: entry.name().to_string(),
                power_uw: entry.cost().power_uw,
                nm: np.nm,
                na: np.na,
                measured_accuracy,
                predicted_accuracy,
            }
        },
    )
}

/// Serializes one component's comparison as a self-contained JSON line.
pub fn qdp_row_to_json(cfg: &QdpConfig, arch: &QdpArchOutcome, row: &QdpRow) -> Value {
    Value::Obj(vec![
        ("bench".into(), Value::from("qdp")),
        // v3: heterogeneous design rows (component = "heterogeneous")
        // alongside the per-component rows; both drops go through the
        // AccuracyBackend trait.
        ("schema_version".into(), Value::from(3usize)),
        ("benchmark".into(), Value::from(cfg.benchmark.name())),
        // String: u64 seeds above 2^53 would round through a JSON number.
        ("seed".into(), Value::from(cfg.seed.to_string())),
        ("arch".into(), Value::from(arch.arch.label())),
        ("model".into(), Value::from(arch.model_name.clone())),
        ("eval_samples".into(), Value::from(cfg.eval_samples)),
        ("component".into(), Value::from(row.component.clone())),
        ("power_uw".into(), Value::from(row.power_uw)),
        ("nm".into(), Value::from(row.nm)),
        ("na".into(), Value::from(row.na)),
        ("float_accuracy".into(), Value::from(arch.float_accuracy)),
        (
            "measured_accuracy".into(),
            Value::from(row.measured_accuracy),
        ),
        (
            "measured_drop_pp".into(),
            Value::from(arch.measured_drop_pp(row)),
        ),
        (
            "predicted_accuracy".into(),
            Value::from(row.predicted_accuracy),
        ),
        (
            "predicted_drop_pp".into(),
            Value::from(arch.predicted_drop_pp(row)),
        ),
    ])
}

/// Serializes one architecture's heterogeneous-design re-score as a
/// self-contained JSON line (`component` = `"heterogeneous"`).
pub fn qdp_design_to_json(cfg: &QdpConfig, arch: &QdpArchOutcome, design: &ApproxDesign) -> Value {
    let components: Vec<Value> = design
        .assignments
        .iter()
        .map(|a| {
            Value::Obj(vec![
                ("layer".into(), Value::from(a.layer.clone())),
                ("group".into(), Value::from(group_slug(a.group))),
                ("component".into(), Value::from(a.component.clone())),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("bench".into(), Value::from("qdp")),
        ("schema_version".into(), Value::from(3usize)),
        ("benchmark".into(), Value::from(cfg.benchmark.name())),
        ("seed".into(), Value::from(cfg.seed.to_string())),
        ("arch".into(), Value::from(arch.arch.label())),
        ("model".into(), Value::from(arch.model_name.clone())),
        ("eval_samples".into(), Value::from(cfg.eval_samples)),
        ("component".into(), Value::from("heterogeneous")),
        ("design_components".into(), Value::Arr(components)),
        (
            "mean_power_saving".into(),
            Value::from(design.mean_power_saving),
        ),
        ("float_accuracy".into(), Value::from(arch.float_accuracy)),
        (
            "measured_accuracy".into(),
            Value::from(design.measured_accuracy.expect("design was re-scored")),
        ),
        (
            "measured_drop_pp".into(),
            Value::from(design.measured_drop_pp().expect("design was re-scored")),
        ),
        (
            "predicted_accuracy".into(),
            Value::from(design.predicted_accuracy),
        ),
        (
            "predicted_drop_pp".into(),
            Value::from(design.predicted_drop_pp()),
        ),
    ])
}

/// All rows of an outcome as JSON lines: architectures in config
/// order, components in library order within each, the heterogeneous
/// design row (when run) last per architecture.
pub fn qdp_to_json_lines(outcome: &QdpOutcome) -> Vec<Value> {
    outcome
        .archs
        .iter()
        .flat_map(|arch| {
            arch.rows
                .iter()
                .map(|row| qdp_row_to_json(&outcome.config, arch, row))
                .chain(
                    arch.design
                        .iter()
                        .map(|design| qdp_design_to_json(&outcome.config, arch, design)),
                )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane::report::json;

    /// Serializes tests that mutate the process-wide thread override.
    static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn tiny(archs: Vec<QdpArch>) -> QdpConfig {
        QdpConfig {
            archs,
            train: 60,
            test: 24,
            epochs: 1,
            calib_samples: 8,
            eval_samples: 12,
            characterization_samples: 500,
            components: Some(vec!["mul8u_1JFF".to_string(), "mul8u_QKX".to_string()]),
            heterogeneous: false,
            ..QdpConfig::smoke()
        }
    }

    #[test]
    fn qdp_emits_one_self_contained_line_per_arch_and_component() {
        let outcome = run_qdp(&tiny(vec![QdpArch::CapsNet, QdpArch::DeepCaps]));
        assert_eq!(outcome.archs.len(), 2);
        let lines = qdp_to_json_lines(&outcome);
        assert_eq!(lines.len(), 4, "2 archs × 2 components");
        for line in &lines {
            let dumped = line.dump();
            assert!(!dumped.contains('\n'), "one line per component");
            let parsed = json::parse(&dumped).unwrap();
            for key in [
                "bench",
                "arch",
                "component",
                "float_accuracy",
                "measured_accuracy",
                "measured_drop_pp",
                "predicted_accuracy",
                "predicted_drop_pp",
                "nm",
                "power_uw",
            ] {
                assert!(parsed.get(key).is_some(), "missing key {key}");
            }
            assert_eq!(parsed.get("bench").unwrap().as_str().unwrap(), "qdp");
            assert_eq!(parsed.get("schema_version").unwrap().as_f64().unwrap(), 3.0);
        }
        // Both architectures present, in config order.
        let arch_of = |i: usize| {
            json::parse(&lines[i].dump())
                .unwrap()
                .get("arch")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        };
        assert_eq!(arch_of(0), "capsnet");
        assert_eq!(arch_of(3), "deepcaps");
    }

    #[test]
    fn exact_component_predicts_zero_drop_and_small_measured_drop() {
        let outcome = run_qdp(&tiny(vec![QdpArch::CapsNet]));
        let arch = &outcome.archs[0];
        let exact = &arch.rows[0];
        assert_eq!(exact.component, "mul8u_1JFF");
        // NM = NA = 0 for the exact multiplier — over any operand
        // distribution, empirical included — so the noise model
        // predicts exactly the baseline.
        assert_eq!(exact.nm, 0.0);
        assert_eq!(exact.predicted_accuracy, arch.float_accuracy);
        // The measured drop of the exact component is pure quantization
        // error — bounded, though the 1-epoch model is noisy.
        assert!(arch.measured_drop_pp(exact).abs() <= 25.0);
    }

    /// With `heterogeneous` on, every architecture gains one design row
    /// carrying both drops for the Step-6 per-layer assignment.
    #[test]
    fn heterogeneous_design_row_reports_both_drops() {
        let cfg = QdpConfig {
            heterogeneous: true,
            ..tiny(vec![QdpArch::CapsNet])
        };
        let outcome = run_qdp(&cfg);
        let arch = &outcome.archs[0];
        let design = arch.design.as_ref().expect("design re-score ran");
        assert!(!design.assignments.is_empty());
        assert!(design.measured_accuracy.is_some());
        // The methodology's baseline is the same clean evaluation the
        // sweep uses, so the design drops share the float baseline.
        assert_eq!(design.baseline_accuracy, arch.float_accuracy);

        let lines = qdp_to_json_lines(&outcome);
        assert_eq!(lines.len(), 3, "2 component rows + 1 design row");
        let parsed = json::parse(&lines[2].dump()).unwrap();
        assert_eq!(
            parsed.get("component").unwrap().as_str().unwrap(),
            "heterogeneous"
        );
        for key in [
            "design_components",
            "mean_power_saving",
            "measured_drop_pp",
            "predicted_drop_pp",
        ] {
            assert!(parsed.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(
            parsed
                .get("design_components")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            design.assignments.len()
        );
    }

    /// Per-arch seeds key on the architecture's identity, so a
    /// deepcaps-only run reproduces exactly the deepcaps rows of a
    /// both-arch run at the same seed (debuggability of CI artifacts).
    #[test]
    fn single_arch_run_reproduces_the_both_arch_rows() {
        let both = run_qdp(&tiny(vec![QdpArch::CapsNet, QdpArch::DeepCaps]));
        let solo = run_qdp(&tiny(vec![QdpArch::DeepCaps]));
        assert_eq!(solo.archs[0].float_accuracy, both.archs[1].float_accuracy);
        assert_eq!(solo.archs[0].rows, both.archs[1].rows);
    }

    /// The artifact-store acceptance bar: a cold (train) run and a warm
    /// (restore) run emit byte-identical JSON lines, and both match a
    /// storeless run — heterogeneous design row included.
    #[test]
    fn cold_and_warm_runs_give_identical_json() {
        let dir =
            std::env::temp_dir().join(format!("redcane-bench-qdp-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = QdpConfig {
            heterogeneous: true,
            artifacts: Some(dir.clone()),
            ..tiny(vec![QdpArch::CapsNet])
        };
        let dump = |cfg: &QdpConfig| {
            let outcome = run_qdp(cfg);
            let lines: Vec<String> = qdp_to_json_lines(&outcome)
                .iter()
                .map(|v| v.dump())
                .collect();
            (outcome.archs[0].provenance, lines.join("\n"))
        };
        let (cold_prov, cold) = dump(&cfg);
        assert_eq!(cold_prov, Provenance::Trained);
        let (warm_prov, warm) = dump(&cfg);
        assert_eq!(warm_prov, Provenance::Restored);
        let (uncached_prov, uncached) = dump(&QdpConfig {
            artifacts: None,
            ..cfg.clone()
        });
        assert_eq!(uncached_prov, Provenance::Trained);
        assert_eq!(cold, warm, "restore changed the output");
        assert_eq!(cold, uncached, "the store changed the output");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The parallel component sweep must not change a single byte of
    /// the output: equal seeds give equal JSON at every thread count —
    /// heterogeneous design row included.
    #[test]
    fn json_is_byte_identical_across_thread_counts() {
        let _guard = THREADS_LOCK.lock().unwrap();
        let cfg = QdpConfig {
            heterogeneous: true,
            ..tiny(vec![QdpArch::CapsNet])
        };
        let dump = |threads: usize| {
            par::set_threads(threads);
            let lines: Vec<String> = qdp_to_json_lines(&run_qdp(&cfg))
                .iter()
                .map(|v| v.dump())
                .collect();
            par::set_threads(0);
            lines.join("\n")
        };
        let serial = dump(1);
        let parallel = dump(3);
        assert_eq!(serial, parallel, "thread count leaked into the rows");
    }
}
