//! Calibration: fixing per-site quantization ranges from the real
//! input distribution.
//!
//! The paper quantizes each array with ranges observed on **real**
//! inputs flowing through the trained network (Table IV's "Real"
//! column), not per-sample min/max. [`CalibrationObserver`] is an
//! [`Injector`] that rides the existing tap points — the same hooks
//! the noise models use — and feeds every tensor it sees into a
//! [`RangeTracker`] keyed by `(layer, operation kind)`. After a sweep
//! over clean calibration inputs, [`CalibrationObserver::params`]
//! turns a site's observed range into fixed [`QuantParams`] for the
//! quantized datapath.

use std::collections::BTreeMap;

use redcane_capsnet::inject::{Injector, OpKind, OpSite};
use redcane_fxp::{FxpError, QuantParams, RangeTracker};
use redcane_tensor::Tensor;

use crate::lower::{LowerError, QuantRanges};

/// Records running min/max per `(layer name, op kind)` site across any
/// number of clean forward passes.
///
/// Sites **inside** dynamic routing are tracked separately from sites
/// outside it: the routing weighted sum `s_j = Σᵢ k·û` shares the
/// `(ClassCaps, MacOutput)` naming with the vote transform but spans a
/// range up to `I×` wider, and merging the two would coarsen the vote
/// codes for nothing.
///
/// With [`CalibrationObserver::with_samples`], the observer also
/// retains up to N representative values per **MAC-input** site — the
/// arrays the datapath feeds to the multipliers — which
/// [`CalibrationObserver::sampled_input_codes`] turns into empirical
/// operand pools for component characterization (the paper's "Real"
/// input distribution, Table IV). Each site keeps a deterministic
/// **reservoir** over every calibration pass, so the pool represents
/// the whole sweep rather than whichever image came first.
#[derive(Debug, Clone, Default)]
pub struct CalibrationObserver {
    // BTreeMaps, not HashMaps: `ranges()` iterates these and its error
    // attribution (and any future ordered consumer) must not depend on
    // hasher state. Enforced by `redcane-lint` rule R1.
    trackers: BTreeMap<(String, OpKind, bool), RangeTracker>,
    /// Values retained per MAC-input site (0 = sampling off).
    max_samples_per_site: usize,
    samples: BTreeMap<(String, bool), Reservoir>,
}

/// A deterministic reservoir sample: every offered value has an equal
/// chance of surviving, regardless of which forward pass produced it.
/// Replacement indices come from a fixed-seed LCG, so equal observation
/// sequences give equal pools.
#[derive(Debug, Clone)]
struct Reservoir {
    values: Vec<f32>,
    seen: u64,
    rng_state: u64,
}

impl Default for Reservoir {
    fn default() -> Self {
        Reservoir {
            values: Vec::new(),
            seen: 0,
            // Arbitrary non-zero seed (π digits); fixed so pools are
            // reproducible.
            rng_state: 0x243F_6A88_85A3_08D3,
        }
    }
}

impl Reservoir {
    fn offer(&mut self, v: f32, cap: usize) {
        self.seen += 1;
        if self.values.len() < cap {
            self.values.push(v);
            return;
        }
        self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (self.rng_state >> 33) % self.seen;
        if (j as usize) < cap {
            self.values[j as usize] = v;
        }
    }
}

impl CalibrationObserver {
    /// Creates an empty observer (range tracking only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an observer that additionally retains up to
    /// `max_samples_per_site` representative values per MAC-input site
    /// for empirical operand pools.
    pub fn with_samples(max_samples_per_site: usize) -> Self {
        CalibrationObserver {
            max_samples_per_site,
            ..Self::default()
        }
    }

    /// The tracker for a non-routing site, if it was visited.
    pub fn tracker(&self, layer: &str, kind: OpKind) -> Option<&RangeTracker> {
        self.trackers.get(&(layer.to_string(), kind, false))
    }

    /// The tracker for a site inside dynamic routing (merged across
    /// iterations), if it was visited.
    pub fn routing_tracker(&self, layer: &str, kind: OpKind) -> Option<&RangeTracker> {
        self.trackers.get(&(layer.to_string(), kind, true))
    }

    /// Number of distinct sites observed.
    pub fn site_count(&self) -> usize {
        self.trackers.len()
    }

    /// Quantization parameters covering a non-routing site's observed
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`FxpError::InvalidRange`] if the site was never visited
    /// (reported with an empty range), or any error from
    /// [`RangeTracker::to_params`].
    pub fn params(&self, layer: &str, kind: OpKind, bits: u8) -> Result<QuantParams, FxpError> {
        Self::tracker_params(self.tracker(layer, kind), bits)
    }

    /// Quantization parameters covering an in-routing site's observed
    /// range (merged across routing iterations).
    ///
    /// # Errors
    ///
    /// As [`CalibrationObserver::params`].
    pub fn routing_params(
        &self,
        layer: &str,
        kind: OpKind,
        bits: u8,
    ) -> Result<QuantParams, FxpError> {
        Self::tracker_params(self.routing_tracker(layer, kind), bits)
    }

    fn tracker_params(tracker: Option<&RangeTracker>, bits: u8) -> Result<QuantParams, FxpError> {
        match tracker {
            Some(t) => t.to_params(bits),
            None => Err(FxpError::InvalidRange {
                min: f32::INFINITY,
                max: f32::NEG_INFINITY,
            }),
        }
    }

    /// Converts every observed site's range into fixed [`QuantParams`],
    /// producing the architecture-generic [`QuantRanges`] map the
    /// lowering pipeline consumes.
    ///
    /// # Errors
    ///
    /// [`LowerError::EmptyCalibration`] when no site was observed;
    /// [`LowerError::Quantization`] if a site's observed range cannot
    /// form valid parameters (only non-finite values seen).
    pub fn ranges(&self, bits: u8) -> Result<QuantRanges, LowerError> {
        if self.trackers.is_empty() {
            return Err(LowerError::EmptyCalibration);
        }
        let mut out = QuantRanges::new();
        for ((layer, kind, in_routing), tracker) in &self.trackers {
            let params = tracker
                .to_params(bits)
                .map_err(|source| LowerError::Quantization {
                    layer: layer.clone(),
                    source,
                })?;
            out.insert(layer, *kind, *in_routing, params);
        }
        Ok(out)
    }

    /// Quantizes the retained MAC-input samples with each site's
    /// calibrated range, concatenated in a deterministic site order —
    /// the empirical **activation-operand pool** for component
    /// characterization. Sites without a range in `ranges` are skipped.
    ///
    /// Empty unless the observer was created with
    /// [`CalibrationObserver::with_samples`].
    pub fn sampled_input_codes(&self, ranges: &QuantRanges) -> Vec<u8> {
        let mut out = Vec::new();
        for (key, bucket) in &self.samples {
            let params = if key.1 {
                ranges.get_routing(&key.0, OpKind::MacInput)
            } else {
                ranges.get(&key.0, OpKind::MacInput)
            };
            if let Some(params) = params {
                out.extend(bucket.values.iter().map(|&v| params.quantize(v) as u8));
            }
        }
        out
    }
}

impl Injector for CalibrationObserver {
    /// Requests [`OpKind::MacInput`] taps too: MAC inputs are exactly
    /// the arrays the quantized datapath feeds to the multipliers.
    fn observes_inputs(&self) -> bool {
        true
    }

    fn inject(&mut self, site: &OpSite, tensor: &mut Tensor) {
        self.trackers
            .entry((
                site.layer_name.clone(),
                site.kind,
                site.routing_iter.is_some(),
            ))
            .or_default()
            .observe(tensor);
        if self.max_samples_per_site > 0
            && site.kind == OpKind::MacInput
            && !tensor.data().is_empty()
        {
            let cap = self.max_samples_per_site;
            let bucket = self
                .samples
                .entry((site.layer_name.clone(), site.routing_iter.is_some()))
                .or_default();
            // Stride so long tensors offer spread-out values; the
            // reservoir then keeps every pass's offers equally likely,
            // so the pool spans the whole calibration sweep.
            let stride = (tensor.len() / cap).max(1);
            for &v in tensor.data().iter().step_by(stride).take(cap) {
                bucket.offer(v, cap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_ranges_per_site_and_merges_visits() {
        let mut obs = CalibrationObserver::new();
        let site = OpSite::new(0, "Conv1", OpKind::MacOutput);
        obs.inject(&site, &mut Tensor::from_slice(&[0.0, 2.0]));
        obs.inject(&site, &mut Tensor::from_slice(&[-1.0, 1.0]));
        let t = obs.tracker("Conv1", OpKind::MacOutput).unwrap();
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.max(), 2.0);
        let p = obs.params("Conv1", OpKind::MacOutput, 8).unwrap();
        assert_eq!(p.quantize(-1.0), 0);
        assert_eq!(p.quantize(2.0), 255);
    }

    #[test]
    fn distinct_sites_get_distinct_trackers() {
        let mut obs = CalibrationObserver::new();
        obs.inject(
            &OpSite::new(0, "Conv1", OpKind::MacOutput),
            &mut Tensor::from_slice(&[5.0]),
        );
        obs.inject(
            &OpSite::new(1, "ClassCaps", OpKind::Softmax),
            &mut Tensor::from_slice(&[0.25]),
        );
        assert_eq!(obs.site_count(), 2);
        assert!(obs.tracker("Conv1", OpKind::Softmax).is_none());
    }

    #[test]
    fn routing_sites_are_tracked_apart_from_layer_sites() {
        let mut obs = CalibrationObserver::new();
        // The vote tensor (outside routing) and the weighted sum
        // (inside routing) share (layer, kind) but not scale.
        obs.inject(
            &OpSite::new(2, "ClassCaps", OpKind::MacOutput),
            &mut Tensor::from_slice(&[-1.0, 1.0]),
        );
        obs.inject(
            &OpSite::routing(2, "ClassCaps", OpKind::MacOutput, 0),
            &mut Tensor::from_slice(&[-40.0, 40.0]),
        );
        let votes = obs.tracker("ClassCaps", OpKind::MacOutput).unwrap();
        assert_eq!((votes.min(), votes.max()), (-1.0, 1.0));
        let s = obs.routing_tracker("ClassCaps", OpKind::MacOutput).unwrap();
        assert_eq!((s.min(), s.max()), (-40.0, 40.0));
        assert!(obs
            .routing_params("ClassCaps", OpKind::MacOutput, 8)
            .is_ok());
    }

    #[test]
    fn unvisited_site_errors() {
        let obs = CalibrationObserver::new();
        assert!(obs.params("Nope", OpKind::MacOutput, 8).is_err());
    }

    #[test]
    fn observes_inputs_opt_in() {
        assert!(CalibrationObserver::new().observes_inputs());
    }

    #[test]
    fn ranges_convert_every_observed_site() {
        let mut obs = CalibrationObserver::new();
        obs.inject(
            &OpSite::new(0, "Conv1", OpKind::MacInput),
            &mut Tensor::from_slice(&[-1.0, 1.0]),
        );
        obs.inject(
            &OpSite::routing(2, "ClassCaps", OpKind::Softmax, 0),
            &mut Tensor::from_slice(&[0.0, 1.0]),
        );
        let ranges = obs.ranges(8).unwrap();
        assert_eq!(ranges.len(), 2);
        assert!(ranges.get("Conv1", OpKind::MacInput).is_some());
        assert!(ranges.get_routing("ClassCaps", OpKind::Softmax).is_some());
        assert_eq!(
            CalibrationObserver::new().ranges(8).unwrap_err(),
            crate::lower::LowerError::EmptyCalibration
        );
    }

    /// The empirical pool must represent the whole calibration sweep,
    /// not just the first image: later passes displace reservoir slots.
    #[test]
    fn sampled_codes_span_multiple_calibration_passes() {
        let mut obs = CalibrationObserver::with_samples(16);
        let site = OpSite::new(0, "Conv1", OpKind::MacInput);
        // First pass saturates the bucket with 0.0-valued samples…
        obs.inject(&site, &mut Tensor::zeros(&[64]));
        // …then many later passes offer 1.0-valued samples.
        for _ in 0..8 {
            obs.inject(&site, &mut Tensor::from_fn(&[64], |_| 1.0));
        }
        let mut ranges = QuantRanges::new();
        ranges.insert(
            "Conv1",
            OpKind::MacInput,
            false,
            QuantParams::from_range(0.0, 1.0, 8).unwrap(),
        );
        let codes = obs.sampled_input_codes(&ranges);
        assert_eq!(codes.len(), 16);
        assert!(
            codes.contains(&255),
            "later passes never reached the pool: {codes:?}"
        );
        // Deterministic: an identical observation sequence gives an
        // identical pool.
        let mut obs2 = CalibrationObserver::with_samples(16);
        obs2.inject(&site, &mut Tensor::zeros(&[64]));
        for _ in 0..8 {
            obs2.inject(&site, &mut Tensor::from_fn(&[64], |_| 1.0));
        }
        assert_eq!(codes, obs2.sampled_input_codes(&ranges));
    }
}
