//! Running range observation for quantization calibration.

use redcane_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::FxpError;
use crate::quant::QuantParams;

/// Observes tensors flowing through an operation and records their running
/// min/max, so a quantization range can be calibrated from **real** input
/// distributions rather than assumed ones.
///
/// This is the mechanism behind the paper's Table IV distinction between
/// "Modeled ΔX" (uniform inputs) and "Real ΔX" (inputs sampled from the
/// trained network's conv layers).
///
/// # Example
///
/// ```
/// use redcane_fxp::RangeTracker;
/// use redcane_tensor::Tensor;
///
/// let mut tracker = RangeTracker::new();
/// tracker.observe(&Tensor::from_slice(&[0.0, 2.0]));
/// tracker.observe(&Tensor::from_slice(&[-1.0, 1.0]));
/// assert_eq!(tracker.min(), -1.0);
/// assert_eq!(tracker.max(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeTracker {
    min: f32,
    max: f32,
    count: u64,
}

impl RangeTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        RangeTracker {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            count: 0,
        }
    }

    /// Records every element of `tensor`. Non-finite elements are ignored.
    pub fn observe(&mut self, tensor: &Tensor) {
        for &v in tensor.data() {
            self.observe_value(v);
        }
    }

    /// Records a single value. Non-finite values are ignored.
    pub fn observe_value(&mut self, v: f32) {
        if !v.is_finite() {
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    /// Smallest observed value (`+inf` before any observation).
    pub fn min(&self) -> f32 {
        self.min
    }

    /// Largest observed value (`-inf` before any observation).
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Number of (finite) values observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` until the first finite observation.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The observed range `max - min`; `0.0` if nothing was observed.
    pub fn range(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.max - self.min
        }
    }

    /// Merges another tracker's observations into this one.
    pub fn merge(&mut self, other: &RangeTracker) {
        if other.is_empty() {
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Produces quantization parameters covering the observed range.
    ///
    /// A degenerate range (every observation was the same value) is
    /// widened by a magnitude-aware pad, so calibration succeeds for any
    /// non-empty set of finite observations.
    ///
    /// # Errors
    ///
    /// Returns [`FxpError::InvalidRange`] if nothing was observed, or
    /// [`FxpError::UnsupportedWordLength`] for a bad `bits`.
    pub fn to_params(&self, bits: u8) -> Result<QuantParams, FxpError> {
        if self.is_empty() {
            return Err(FxpError::InvalidRange {
                min: self.min,
                max: self.max,
            });
        }
        let (mut min, mut max) = (self.min, self.max);
        if max <= min {
            (min, max) = crate::quant::widen_degenerate(min, max);
        }
        QuantParams::from_range(min, max, bits)
    }
}

impl Default for RangeTracker {
    fn default() -> Self {
        RangeTracker::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let t = RangeTracker::new();
        assert!(t.is_empty());
        assert_eq!(t.range(), 0.0);
        assert!(t.to_params(8).is_err());
    }

    #[test]
    fn tracks_extremes_across_observations() {
        let mut t = RangeTracker::new();
        t.observe(&Tensor::from_slice(&[1.0, 5.0]));
        t.observe(&Tensor::from_slice(&[-3.0, 2.0]));
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.range(), 8.0);
        assert_eq!(t.count(), 4);
    }

    #[test]
    fn ignores_non_finite() {
        let mut t = RangeTracker::new();
        t.observe_value(f32::NAN);
        t.observe_value(f32::INFINITY);
        assert!(t.is_empty());
        t.observe_value(1.0);
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn merge_combines() {
        let mut a = RangeTracker::new();
        a.observe_value(0.0);
        let mut b = RangeTracker::new();
        b.observe_value(10.0);
        a.merge(&b);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 10.0);
        assert_eq!(a.count(), 2);
        // Merging an empty tracker changes nothing.
        a.merge(&RangeTracker::new());
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn to_params_covers_observed_values() {
        let mut t = RangeTracker::new();
        t.observe(&Tensor::from_slice(&[-2.0, 4.0]));
        let p = t.to_params(8).unwrap();
        assert_eq!(p.quantize(-2.0), 0);
        assert_eq!(p.quantize(4.0), 255);
    }

    #[test]
    fn single_constant_value_still_calibrates() {
        let mut t = RangeTracker::new();
        t.observe_value(7.0);
        let p = t.to_params(8).unwrap();
        assert!((p.round_trip(7.0) - 7.0).abs() < p.lsb());
    }

    #[test]
    fn large_magnitude_constant_still_calibrates() {
        // The old fixed ±0.5 pad vanished in f32 rounding at this scale,
        // erroring out of calibration on constant activation tensors.
        let mut t = RangeTracker::new();
        t.observe_value(2.5e9);
        let p = t.to_params(8).unwrap();
        let rel = ((p.round_trip(2.5e9) - 2.5e9) / 2.5e9).abs();
        assert!(rel < 1e-2, "rel {rel}");
    }
}
