//! The multiply lookup table backing the quantized kernels.
//!
//! An 8×8 unsigned multiplier has only 65 536 distinct input pairs, so
//! any [`Multiplier8`] — bit-level behavioral models included — can be
//! tabulated once into a 64 KiB table and then applied at L1-resident
//! lookup speed inside the GEMM inner loops. This is what makes
//! sweeping a whole component library through end-to-end inference
//! practical.
//!
//! Unlike `redcane_axmul`'s `LutMultiplier` (a [`Multiplier8`] adapter
//! behind dynamic dispatch), [`MulLut`] is a concrete struct the
//! kernels index directly, so the hot loop has no virtual call.

use redcane_axmul::{ExactMultiplier, Multiplier8};

/// A precomputed table of all 256×256 products of one multiplier model.
#[derive(Clone)]
pub struct MulLut {
    table: Box<[u16; 65536]>,
    description: String,
}

impl MulLut {
    /// Tabulates `model` exhaustively over all 65 536 input pairs.
    pub fn tabulate(model: &dyn Multiplier8) -> Self {
        let mut table = vec![0u16; 65536].into_boxed_slice();
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                table[((a as usize) << 8) | b as usize] = model.multiply(a as u8, b as u8);
            }
        }
        MulLut {
            table: table.try_into().expect("sized 65536"),
            description: model.description(),
        }
    }

    /// The exact 8×8 multiplier's table.
    pub fn exact() -> Self {
        Self::tabulate(&ExactMultiplier)
    }

    /// Looks up `a · b` as the tabulated model computes it.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u16 {
        // The index is < 65536 by construction; with the fixed-size
        // boxed array the bounds check folds away.
        self.table[((a as usize) << 8) | b as usize]
    }

    /// The tabulated model's one-line description.
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl std::fmt::Debug for MulLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulLut")
            .field("description", &self.description)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_axmul::library::MultiplierLibrary;

    /// Exhaustive LUT ↔ direct-multiply equivalence over all 65 536
    /// input pairs, for the exact component and two approximate library
    /// entries — the LUT path must be bit-identical to calling
    /// `Multiplier8::multiply` directly.
    #[test]
    fn lut_bit_identical_to_direct_multiply_exhaustively() {
        let lib = MultiplierLibrary::evo_approx_like();
        for name in ["mul8u_1JFF", "mul8u_NGR", "mul8u_QKX"] {
            let entry = lib.find(name).unwrap_or_else(|| panic!("missing {name}"));
            let lut = MulLut::tabulate(entry.model());
            for a in 0..=255u8 {
                for b in 0..=255u8 {
                    assert_eq!(
                        lut.mul(a, b),
                        entry.model().multiply(a, b),
                        "{name}: {a} x {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_lut_is_the_product() {
        let lut = MulLut::exact();
        assert_eq!(lut.mul(255, 255), 65025);
        assert_eq!(lut.mul(0, 200), 0);
        assert_eq!(lut.mul(12, 11), 132);
        assert!(lut.description().contains("exact"));
    }
}
