//! Offline shim for `bytes`.
//!
//! `Bytes`/`BytesMut` back onto a plain `Vec<u8>` (no refcounted slab —
//! the weight codec reads and writes whole buffers), and `Buf`/`BufMut`
//! expose exactly the little-endian accessors the weight format needs.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the buffer into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential big-buffer reader; implemented for `&[u8]`, which advances
/// through the slice as values are consumed.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "copy_to_slice: {} bytes requested, {} remain",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential writer; implemented for [`BytesMut`].
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut w = BytesMut::new();
        w.put_slice(b"hdr!");
        w.put_u32_le(0xdead_beef);
        w.put_f32_le(1.5);
        w.put_u8(7);
        w.put_u64_le(u64::MAX - 1);
        w.put_f64_le(-0.25);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 29);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr!");
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), -0.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn over_read_panics() {
        let mut r: &[u8] = b"ab";
        let mut dst = [0u8; 3];
        r.copy_to_slice(&mut dst);
    }
}
