//! Dynamic routing-by-agreement (Sabour et al., Procedure 1), shared by
//! the fully-connected `ClassCaps` and the convolutional `Caps3D` layers.
//!
//! The routing state is expressed over a **vote tensor** `[I, J, D, P]`:
//! input capsule `i` casts a `D`-dimensional vote for output capsule type
//! `j` at position `p`. Per iteration:
//!
//! 1. coupling `k = softmax_J(b)` — **Softmax tap** (group #3);
//! 2. `s_j = Σ_i k_ij · û_{j|i}` — **MAC-output tap** (group #1);
//! 3. `v_j = squash(s_j)` — **Activation tap** (group #2);
//! 4. `b_ij += û_{j|i} · v_j` — **LogitsUpdate tap** (group #4).
//!
//! The backward pass treats the final coupling coefficients as constants
//! (standard practice for training CapsNets): gradients flow through the
//! weighted sum and the squash, not through the coefficient updates.

use redcane_tensor::Tensor;

use crate::inject::{Injector, OpKind, OpSite};
use crate::squash::{squash_caps, squash_caps_backward};

/// Everything the forward pass produces and the backward pass needs.
#[derive(Debug, Clone)]
pub struct RoutingCache {
    /// The votes actually used (post any injection by the caller).
    pub votes: Tensor,
    /// Final coupling coefficients `[I, J, P]`.
    pub k_last: Tensor,
    /// Final pre-squash weighted sum `[J, D, P]`.
    pub s_last: Tensor,
    /// Final output capsules `[J, D, P]`.
    pub v: Tensor,
}

/// Runs `iterations` rounds of routing-by-agreement over `votes`
/// (`[I, J, D, P]`), calling `injector` at every tagged operation.
///
/// # Panics
///
/// Panics unless `votes` is rank 4 and `iterations >= 1`.
pub fn dynamic_routing(
    votes: Tensor,
    iterations: usize,
    layer_index: usize,
    layer_name: &str,
    injector: &mut dyn Injector,
) -> RoutingCache {
    assert_eq!(votes.ndim(), 4, "votes must be [I, J, D, P]");
    assert!(iterations >= 1, "routing needs at least one iteration");
    let (i_caps, j_caps, d, p) = (
        votes.shape()[0],
        votes.shape()[1],
        votes.shape()[2],
        votes.shape()[3],
    );
    let mut b = Tensor::zeros(&[i_caps, j_caps, p]);
    let mut k_last = Tensor::zeros(&[i_caps, j_caps, p]);
    let mut s_last = Tensor::zeros(&[j_caps, d, p]);
    let mut v = Tensor::zeros(&[j_caps, d, p]);
    let vd = votes.data();
    for r in 0..iterations {
        let iter = r as u8;
        // 1. Coupling coefficients.
        let mut k = b.softmax_axis(1).expect("rank-3 softmax over J");
        injector.inject(
            &OpSite::routing(layer_index, layer_name, OpKind::Softmax, iter),
            &mut k,
        );
        // 2. Weighted vote sum s_j = sum_i k_ij * votes_ij.
        let kd = k.data();
        let mut s = Tensor::zeros(&[j_caps, d, p]);
        {
            let sd = s.data_mut();
            for i in 0..i_caps {
                for j in 0..j_caps {
                    for di in 0..d {
                        let vrow = ((i * j_caps + j) * d + di) * p;
                        let krow = (i * j_caps + j) * p;
                        let srow = (j * d + di) * p;
                        for pi in 0..p {
                            sd[srow + pi] += kd[krow + pi] * vd[vrow + pi];
                        }
                    }
                }
            }
        }
        injector.inject(
            &OpSite::routing(layer_index, layer_name, OpKind::MacOutput, iter),
            &mut s,
        );
        // 3. Squash.
        v = squash_caps(&s);
        injector.inject(
            &OpSite::routing(layer_index, layer_name, OpKind::Activation, iter),
            &mut v,
        );
        k_last = k;
        s_last = s;
        // 4. Agreement update (skipped after the last iteration).
        if r + 1 < iterations {
            let vd2 = v.data();
            {
                let bd = b.data_mut();
                for i in 0..i_caps {
                    for j in 0..j_caps {
                        for pi in 0..p {
                            let mut dot = 0.0f32;
                            for di in 0..d {
                                dot += vd[((i * j_caps + j) * d + di) * p + pi]
                                    * vd2[(j * d + di) * p + pi];
                            }
                            bd[(i * j_caps + j) * p + pi] += dot;
                        }
                    }
                }
            }
            injector.inject(
                &OpSite::routing(layer_index, layer_name, OpKind::LogitsUpdate, iter),
                &mut b,
            );
        }
    }
    RoutingCache {
        votes,
        k_last,
        s_last,
        v,
    }
}

/// Backward pass with detached coupling coefficients: given `dv` on the
/// routing output, returns `d_votes` (`[I, J, D, P]`).
///
/// # Panics
///
/// Panics if `dv`'s shape differs from the cached output.
pub fn dynamic_routing_backward(cache: &RoutingCache, dv: &Tensor) -> Tensor {
    assert_eq!(dv.shape(), cache.v.shape(), "dv must match routing output");
    let ds = squash_caps_backward(&cache.s_last, dv);
    let (i_caps, j_caps, d, p) = (
        cache.votes.shape()[0],
        cache.votes.shape()[1],
        cache.votes.shape()[2],
        cache.votes.shape()[3],
    );
    let kd = cache.k_last.data();
    let dsd = ds.data();
    let mut out = vec![0.0f32; i_caps * j_caps * d * p];
    for i in 0..i_caps {
        for j in 0..j_caps {
            for di in 0..d {
                let orow = ((i * j_caps + j) * d + di) * p;
                let krow = (i * j_caps + j) * p;
                let srow = (j * d + di) * p;
                for pi in 0..p {
                    out[orow + pi] = kd[krow + pi] * dsd[srow + pi];
                }
            }
        }
    }
    Tensor::from_vec(out, cache.votes.shape()).expect("sized")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{NoInjection, RecordingInjector};
    use redcane_tensor::TensorRng;

    #[test]
    fn output_shape_and_length_bounds() {
        let mut rng = TensorRng::from_seed(120);
        let votes = rng.uniform(&[6, 3, 4, 2], -1.0, 1.0);
        let cache = dynamic_routing(votes, 3, 7, "TestCaps", &mut NoInjection);
        assert_eq!(cache.v.shape(), &[3, 4, 2]);
        let lengths = crate::squash::caps_lengths(&cache.v);
        assert!(lengths.data().iter().all(|&l| (0.0..1.0).contains(&l)));
    }

    #[test]
    fn coupling_coefficients_are_probabilities_over_j() {
        let mut rng = TensorRng::from_seed(121);
        let votes = rng.uniform(&[5, 4, 3, 2], -1.0, 1.0);
        let cache = dynamic_routing(votes, 3, 0, "TestCaps", &mut NoInjection);
        let sums = cache.k_last.sum_axis(1).unwrap();
        for &s in sums.data() {
            assert!((s - 1.0).abs() < 1e-4, "k must sum to 1 over J: {s}");
        }
    }

    #[test]
    fn one_iteration_is_uniform_coupling() {
        let mut rng = TensorRng::from_seed(122);
        let votes = rng.uniform(&[4, 2, 3, 1], -1.0, 1.0);
        let cache = dynamic_routing(votes, 1, 0, "TestCaps", &mut NoInjection);
        for &k in cache.k_last.data() {
            assert!((k - 0.5).abs() < 1e-5, "uniform over 2 types: {k}");
        }
    }

    #[test]
    fn routing_sharpens_agreement() {
        // Construct votes where inputs agree strongly with output type 0
        // and are random for type 1: routing must shift coupling toward 0.
        let mut rng = TensorRng::from_seed(123);
        let (i_caps, j_caps, d, p) = (8, 2, 4, 1);
        let shared = rng.uniform(&[d], 0.5, 1.0);
        let mut votes = Tensor::zeros(&[i_caps, j_caps, d, p]);
        for i in 0..i_caps {
            for di in 0..d {
                votes
                    .set(&[i, 0, di, 0], shared.data()[di] + rng.next_uniform(-0.05, 0.05))
                    .unwrap();
                votes
                    .set(&[i, 1, di, 0], rng.next_uniform(-1.0, 1.0))
                    .unwrap();
            }
        }
        let cache = dynamic_routing(votes, 3, 0, "TestCaps", &mut NoInjection);
        let k_to_0: f32 =
            (0..i_caps).map(|i| cache.k_last.get(&[i, 0, 0]).unwrap()).sum::<f32>() / i_caps as f32;
        assert!(k_to_0 > 0.55, "agreed type should attract coupling: {k_to_0}");
    }

    #[test]
    fn taps_fire_in_expected_pattern() {
        let mut rng = TensorRng::from_seed(124);
        let votes = rng.uniform(&[3, 2, 2, 1], -1.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let _ = dynamic_routing(votes, 3, 5, "Caps3D", &mut rec);
        let softmax = rec.visits.iter().filter(|s| s.kind == OpKind::Softmax).count();
        let mac = rec.visits.iter().filter(|s| s.kind == OpKind::MacOutput).count();
        let act = rec.visits.iter().filter(|s| s.kind == OpKind::Activation).count();
        let upd = rec
            .visits
            .iter()
            .filter(|s| s.kind == OpKind::LogitsUpdate)
            .count();
        assert_eq!(softmax, 3);
        assert_eq!(mac, 3);
        assert_eq!(act, 3);
        assert_eq!(upd, 2, "updates happen between iterations");
        assert!(rec.visits.iter().all(|s| s.layer_index == 5));
        assert!(rec.visits.iter().all(|s| s.routing_iter.is_some()));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = TensorRng::from_seed(125);
        let votes = rng.uniform(&[4, 3, 3, 2], -1.0, 1.0);
        let coeffs = rng.uniform(&[3, 3, 2], -1.0, 1.0);
        // Loss as a function of votes, with coupling coefficients FROZEN to
        // the unperturbed forward's final k (that is the detachment the
        // backward pass assumes).
        let base = dynamic_routing(votes.clone(), 3, 0, "T", &mut NoInjection);
        let dvotes = dynamic_routing_backward(&base, &coeffs);
        let k_frozen = base.k_last.clone();
        let loss_frozen = |votes: &Tensor| -> f32 {
            // Recompute s with frozen k, then squash, then dot with coeffs.
            let (i_caps, j_caps, d, p) = (4usize, 3usize, 3usize, 2usize);
            let mut s = Tensor::zeros(&[j_caps, d, p]);
            for i in 0..i_caps {
                for j in 0..j_caps {
                    for di in 0..d {
                        for pi in 0..p {
                            let add = k_frozen.get(&[i, j, pi]).unwrap()
                                * votes.get(&[i, j, di, pi]).unwrap();
                            let cur = s.get(&[j, di, pi]).unwrap();
                            s.set(&[j, di, pi], cur + add).unwrap();
                        }
                    }
                }
            }
            squash_caps(&s).mul(&coeffs).unwrap().sum()
        };
        let eps = 1e-2f32;
        for idx in [0usize, 11, 29, 47, 63] {
            let mut vp = votes.clone();
            vp.data_mut()[idx] += eps;
            let mut vm = votes.clone();
            vm.data_mut()[idx] -= eps;
            let num = (loss_frozen(&vp) - loss_frozen(&vm)) / (2.0 * eps);
            let ana = dvotes.data()[idx];
            assert!(
                (num - ana).abs() < 5e-3 * (1.0 + num.abs()),
                "dvotes[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_iterations() {
        let votes = Tensor::zeros(&[2, 2, 2, 1]);
        let _ = dynamic_routing(votes, 0, 0, "T", &mut NoInjection);
    }
}
