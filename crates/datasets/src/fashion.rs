//! Fashion-MNIST-like renderer: ten garment silhouettes as filled
//! grayscale masks with per-sample jitter.
//!
//! Class list mirrors Fashion-MNIST: t-shirt, trouser, pullover, dress,
//! coat, sandal, shirt, sneaker, bag, ankle boot.

use redcane_tensor::{Tensor, TensorRng};

use crate::canvas::Canvas;

/// Renders garment class `0..=9` onto a `[1, h, w]` tensor.
///
/// # Panics
///
/// Panics if `class > 9`.
pub fn render(class: usize, h: usize, w: usize, rng: &mut TensorRng) -> Tensor {
    assert!(class <= 9, "fashion classes are 0..=9");
    let mut c = Canvas::new(h, w);
    let hf = h as f32;
    let wf = w as f32;
    let ink = rng.next_uniform(0.65, 1.0);
    let mut s = |f: f32| f + rng.next_uniform(-0.4, 0.4); // jittered coordinate

    match class {
        // 0: t-shirt — torso block + short sleeves.
        0 => {
            c.fill_rect(s(hf * 0.30), s(wf * 0.35), s(hf * 0.85), s(wf * 0.65), ink);
            c.fill_rect(s(hf * 0.30), s(wf * 0.15), s(hf * 0.45), s(wf * 0.85), ink);
        }
        // 1: trouser — two vertical legs joined at a waistband.
        1 => {
            c.fill_rect(s(hf * 0.15), s(wf * 0.35), s(hf * 0.30), s(wf * 0.65), ink);
            c.fill_rect(s(hf * 0.30), s(wf * 0.35), s(hf * 0.90), s(wf * 0.47), ink);
            c.fill_rect(s(hf * 0.30), s(wf * 0.53), s(hf * 0.90), s(wf * 0.65), ink);
        }
        // 2: pullover — torso + long sleeves down the sides.
        2 => {
            c.fill_rect(s(hf * 0.25), s(wf * 0.32), s(hf * 0.85), s(wf * 0.68), ink);
            c.fill_rect(s(hf * 0.25), s(wf * 0.12), s(hf * 0.80), s(wf * 0.26), ink);
            c.fill_rect(s(hf * 0.25), s(wf * 0.74), s(hf * 0.80), s(wf * 0.88), ink);
        }
        // 3: dress — narrow top flaring to a wide hem (triangle-ish).
        3 => {
            let top_y = hf * 0.20;
            let bot_y = hf * 0.88;
            let steps = 12;
            for i in 0..=steps {
                let t = i as f32 / steps as f32;
                let y = top_y + (bot_y - top_y) * t;
                let half = wf * (0.08 + 0.26 * t);
                c.fill_rect(y, s(wf * 0.5 - half), y + 1.0, s(wf * 0.5 + half), ink);
            }
        }
        // 4: coat — wide torso, long sleeves, open front seam.
        4 => {
            c.fill_rect(s(hf * 0.22), s(wf * 0.30), s(hf * 0.90), s(wf * 0.70), ink);
            c.fill_rect(s(hf * 0.22), s(wf * 0.10), s(hf * 0.85), s(wf * 0.24), ink);
            c.fill_rect(s(hf * 0.22), s(wf * 0.76), s(hf * 0.85), s(wf * 0.90), ink);
            // Front seam: darker gap down the middle.
            c.fill_rect(s(hf * 0.25), wf * 0.49, s(hf * 0.90), wf * 0.51, 0.0);
        }
        // 5: sandal — sole bar + two thin straps.
        5 => {
            c.fill_rect(s(hf * 0.70), s(wf * 0.15), s(hf * 0.82), s(wf * 0.85), ink);
            c.line(hf * 0.70, wf * 0.25, hf * 0.40, wf * 0.45, 1.2, ink);
            c.line(hf * 0.70, wf * 0.65, hf * 0.40, wf * 0.45, 1.2, ink);
        }
        // 6: shirt — torso with collar notch and short sleeves.
        6 => {
            c.fill_rect(s(hf * 0.28), s(wf * 0.34), s(hf * 0.86), s(wf * 0.66), ink);
            c.fill_rect(s(hf * 0.28), s(wf * 0.18), s(hf * 0.50), s(wf * 0.82), ink);
            c.fill_rect(hf * 0.24, wf * 0.45, hf * 0.36, wf * 0.55, 0.0); // collar
        }
        // 7: sneaker — low wedge with a toe bump.
        7 => {
            c.fill_rect(s(hf * 0.60), s(wf * 0.12), s(hf * 0.80), s(wf * 0.88), ink);
            c.fill_ellipse(s(hf * 0.60), s(wf * 0.25), hf * 0.12, wf * 0.16, ink);
            c.fill_rect(s(hf * 0.45), s(wf * 0.55), s(hf * 0.62), s(wf * 0.85), ink);
        }
        // 8: bag — box with a handle arc.
        8 => {
            c.fill_rect(s(hf * 0.45), s(wf * 0.20), s(hf * 0.85), s(wf * 0.80), ink);
            c.ellipse_outline(s(hf * 0.42), s(wf * 0.5), hf * 0.18, wf * 0.18, 1.3, ink);
        }
        // 9: ankle boot — L-shaped shaft + sole.
        9 => {
            c.fill_rect(s(hf * 0.20), s(wf * 0.40), s(hf * 0.80), s(wf * 0.65), ink);
            c.fill_rect(s(hf * 0.62), s(wf * 0.40), s(hf * 0.82), s(wf * 0.88), ink);
        }
        // lint: allow(panic) — unreachable: the class index was validated by the preceding check
        _ => unreachable!("class checked above"),
    }

    let angle = rng.next_uniform(-0.12, 0.12);
    let dy = rng.next_uniform(-1.0, 1.0);
    let dx = rng.next_uniform(-1.0, 1.0);
    let mut canvas = c.jitter(angle, dy, dx);
    canvas.add_noise(0.05, rng);
    canvas.to_tensor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_classes_with_ink() {
        let mut rng = TensorRng::from_seed(80);
        for cl in 0..10 {
            let t = render(cl, 16, 16, &mut rng);
            assert_eq!(t.shape(), &[1, 16, 16]);
            assert!(t.sum() > 5.0, "class {cl} silhouette missing");
        }
    }

    #[test]
    fn trouser_and_bag_differ_structurally() {
        // Silhouettes must be distinguishable: bag mass sits low-center,
        // trouser mass is split into two columns.
        let mut rng = TensorRng::from_seed(81);
        let trouser = render(1, 16, 16, &mut rng);
        let bag = render(8, 16, 16, &mut rng);
        // Center column ink of the trouser is low (gap between legs).
        let mid_col_trouser: f32 = (0..16).map(|y| trouser.get(&[0, y, 8]).unwrap()).sum();
        let mid_col_bag: f32 = (0..16).map(|y| bag.get(&[0, y, 8]).unwrap()).sum();
        assert!(mid_col_bag > mid_col_trouser);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_class() {
        let mut rng = TensorRng::from_seed(82);
        let _ = render(10, 16, 16, &mut rng);
    }
}
