//! Pins the serve plane's deterministic work counters: under fill-only
//! batching the batch cuts are a pure function of each model's request
//! subsequence, so every stable counter — the serve plane's own and
//! the datapath's qgemm/LUT traffic underneath it — must be
//! byte-identical across worker counts. This is the invariant the CI
//! `cmp` across `REDCANE_THREADS=2/1` rests on.

use std::sync::mpsc::channel;

use redcane_axmul::{LutCache, MultiplierLibrary};
use redcane_capsnet::{CapsNet, CapsNetConfig};
use redcane_qdp::{DatapathAssignment, QModel};
use redcane_serve::{Engine, ServeConfig};
use redcane_tensor::{Tensor, TensorRng};
use redcane_trace as trace;

/// Serializes tests against the process-global trace planes.
static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Every stable counter total, Run region, by name.
fn stable_counters(snap: &trace::Snapshot) -> Vec<(&'static str, u64)> {
    trace::Counter::ALL
        .iter()
        .filter(|c| c.stable())
        .map(|c| (c.name(), snap.run(*c)))
        .collect()
}

#[test]
fn fill_only_serving_is_counter_deterministic_across_worker_counts() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let mut rng = TensorRng::from_seed(7001);
    let cfg = CapsNetConfig::small(1, 16);
    let mut model = CapsNet::new(&cfg, &mut rng);
    let calib: Vec<Tensor> = (0..3)
        .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
        .collect();
    let q = QModel::calibrated(&mut model, calib.iter()).unwrap();
    let luts = LutCache::for_components(
        &MultiplierLibrary::evo_approx_like(),
        ["mul8u_1JFF", "mul8u_QKX"],
    )
    .unwrap();
    let engine = Engine::new(
        vec![
            (
                "exact".into(),
                q.clone(),
                DatapathAssignment::uniform("mul8u_1JFF"),
            ),
            ("qkx".into(), q, DatapathAssignment::uniform("mul8u_QKX")),
        ],
        &luts,
    )
    .unwrap();
    let inputs: Vec<Tensor> = (0..9)
        .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
        .collect();

    let run = |workers: usize| {
        trace::reset();
        trace::set_enabled(true);
        let config = ServeConfig {
            workers,
            max_batch: 4,
            max_wait: None,
        };
        let (rx, _stats) = engine.serve(&config, |submitter| {
            let (tx, rx) = channel();
            for (i, input) in inputs.iter().enumerate() {
                let _ = submitter.submit_with(i % 2, input.clone(), tx.clone());
            }
            rx
        });
        assert_eq!(rx.into_iter().count(), inputs.len());
        let snap = trace::snapshot();
        trace::set_enabled(false);
        trace::reset();
        snap
    };

    let one = run(1);
    let four = run(4);
    assert_eq!(
        stable_counters(&one),
        stable_counters(&four),
        "stable counters must not depend on worker count"
    );
    // The serve plane's own totals: 9 requests, 3 batches per the
    // positional cuts (model 0: 5 requests -> 4+1, model 1: 4 -> 4),
    // peak batch 4.
    assert_eq!(one.run(trace::Counter::ServeRequests), 9);
    assert_eq!(one.run(trace::Counter::ServeBatches), 3);
    assert_eq!(one.run(trace::Counter::ServeItemsCoalesced), 9);
    assert_eq!(one.run(trace::Counter::ServeBatchMax), 4);
    // The datapath underneath did real, traced work.
    assert!(one.run(trace::Counter::QgemmCalls) > 0);
}
