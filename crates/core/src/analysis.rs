//! Steps 2–5 — group-wise and layer-wise resilience analysis.
//!
//! A *resilience analysis step* (paper Sec. IV) fixes the noise parameters
//! `(NM, NA)`, injects noise into a selected set of operations, and
//! monitors the test accuracy of the noisy CapsNet. Sweeping `NM` over a
//! log-spaced grid yields the accuracy-drop curves of Figs. 9, 10 and 12.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use redcane_capsnet::{evaluate, CapsModel};
use redcane_datasets::Dataset;
use serde::{Deserialize, Serialize};

use crate::groups::Group;
use crate::noise::{GaussianNoiseInjector, NoiseModel, NoiseTarget};

/// Parameters of a resilience sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Noise magnitudes to test, typically descending (the paper uses
    /// `NM ∈ [0.5 … 0.001]`).
    pub nm_values: Vec<f64>,
    /// Noise average (the paper's general-case analysis uses `NA = 0`).
    pub na: f64,
    /// Base seed; every `(target, NM)` cell derives its own stream.
    pub seed: u64,
    /// Evaluate at most this many test samples (speed knob); `None` uses
    /// the whole set.
    pub max_test_samples: Option<usize>,
    /// Number of worker threads (1 = serial). Results are identical
    /// regardless of parallelism.
    pub threads: usize,
}

impl Default for SweepConfig {
    /// The paper's grid: `0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002,
    /// 0.001`, `NA = 0`.
    fn default() -> Self {
        SweepConfig {
            nm_values: vec![0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001],
            na: 0.0,
            seed: 99,
            max_test_samples: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// One `(NM, accuracy)` measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Injected noise magnitude.
    pub nm: f64,
    /// Test accuracy under injection, in `[0, 1]`.
    pub accuracy: f64,
    /// Accuracy drop vs the accurate baseline, in percentage points
    /// (positive = worse than baseline, matching the paper's negated axes).
    pub drop_pp: f64,
}

/// The accuracy curve of one injection target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve<T> {
    /// What was injected (a group, or a layer name).
    pub target: T,
    /// Measurements in the order of `SweepConfig::nm_values`.
    pub points: Vec<SweepPoint>,
}

impl<T> Curve<T> {
    /// Largest swept `NM` whose accuracy drop stays within
    /// `max_drop_pp` percentage points — the curve's **critical noise
    /// magnitude**. Returns `0.0` if even the smallest `NM` exceeds the
    /// budget.
    pub fn critical_nm(&self, max_drop_pp: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.drop_pp <= max_drop_pp)
            .map(|p| p.nm)
            .fold(0.0, f64::max)
    }
}

/// Step-2 output: group-wise resilience curves (Figs. 9 and 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSweep {
    /// Model display name.
    pub model_name: String,
    /// Dataset name.
    pub dataset_name: String,
    /// Accuracy of the accurate network on the same test subset.
    pub baseline_accuracy: f64,
    /// One curve per group, in Table III order.
    pub curves: Vec<Curve<Group>>,
}

impl GroupSweep {
    /// The curve of one group.
    ///
    /// # Panics
    ///
    /// Panics if the sweep somehow lacks the group.
    pub fn curve(&self, group: Group) -> &Curve<Group> {
        self.curves
            .iter()
            .find(|c| c.target == group)
            // lint: allow(panic) — the sweep enumerates all four operation groups by construction
            .expect("sweep covers all four groups")
    }
}

/// Step-4 output: per-layer resilience curves of one group (Fig. 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSweep {
    /// Model display name.
    pub model_name: String,
    /// The (non-resilient) group analyzed.
    pub group: Group,
    /// Accuracy of the accurate network on the same test subset.
    pub baseline_accuracy: f64,
    /// One curve per participating layer, in network order.
    pub curves: Vec<Curve<String>>,
}

fn task_seed(base: u64, tag: &str, nm: f64) -> u64 {
    let mut h = DefaultHasher::new();
    base.hash(&mut h);
    tag.hash(&mut h);
    nm.to_bits().hash(&mut h);
    h.finish()
}

/// Evaluates accuracy with noise injected at `target`.
fn noisy_accuracy<M: CapsModel>(
    model: &mut M,
    data: &Dataset,
    target: NoiseTarget,
    model_params: NoiseModel,
    seed: u64,
) -> f64 {
    let mut injector = GaussianNoiseInjector::new(model_params, target, seed);
    evaluate(model, data, &mut injector)
}

/// Runs a set of `(tag, target, nm)` evaluation cells over worker threads,
/// returning accuracies in task order. Deterministic in `cfg.seed`
/// regardless of thread count.
fn run_cells<M: CapsModel + Clone + Send + Sync>(
    model: &M,
    data: &Dataset,
    cfg: &SweepConfig,
    tasks: &[(String, NoiseTarget, f64)],
) -> Vec<f64> {
    let results = Mutex::new(vec![0.0f64; tasks.len()]);
    let next = AtomicUsize::new(0);
    let workers = cfg.threads.clamp(1, tasks.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = model.clone();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= tasks.len() {
                        break;
                    }
                    let (tag, target, nm) = &tasks[idx];
                    let acc = noisy_accuracy(
                        &mut local,
                        data,
                        target.clone(),
                        NoiseModel::new(*nm, cfg.na),
                        task_seed(cfg.seed, tag, *nm),
                    );
                    // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
                    results.lock().expect("no poisoned lock")[idx] = acc;
                }
            });
        }
    });
    // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
    results.into_inner().expect("no poisoned lock")
}

fn subset(data: &Dataset, cfg: &SweepConfig) -> Dataset {
    match cfg.max_test_samples {
        Some(n) if n < data.len() => data.take(n),
        _ => data.clone(),
    }
}

/// **Step 2** — group-wise resilience analysis: injects the same noise
/// into every operation of one group (keeping the other groups accurate)
/// and sweeps `NM`.
pub fn group_sweep<M: CapsModel + Clone + Send + Sync>(
    model: &M,
    data: &Dataset,
    cfg: &SweepConfig,
) -> GroupSweep {
    let data = subset(data, cfg);
    let baseline = redcane_capsnet::evaluate_clean(model, &data);
    let mut tasks = Vec::new();
    for group in Group::all() {
        for &nm in &cfg.nm_values {
            tasks.push((
                format!("group:{}", group.number()),
                NoiseTarget::group(group.op_kind()),
                nm,
            ));
        }
    }
    let accs = run_cells(model, &data, cfg, &tasks);
    let mut curves = Vec::new();
    let mut it = accs.into_iter();
    for group in Group::all() {
        let points = cfg
            .nm_values
            .iter()
            .map(|&nm| {
                // lint: allow(panic) — the parallel map returns exactly one result per submitted task
                let accuracy = it.next().expect("one result per task");
                SweepPoint {
                    nm,
                    accuracy,
                    drop_pp: (baseline - accuracy) * 100.0,
                }
            })
            .collect();
        curves.push(Curve {
            target: group,
            points,
        });
    }
    GroupSweep {
        model_name: model.name(),
        dataset_name: data.name.clone(),
        baseline_accuracy: baseline,
        curves,
    }
}

/// **Step 4** — layer-wise resilience analysis of one (non-resilient)
/// group: injects noise into that group's operations of a single layer at
/// a time.
pub fn layer_sweep<M: CapsModel + Clone + Send + Sync>(
    model: &M,
    data: &Dataset,
    group: Group,
    layers: &[String],
    cfg: &SweepConfig,
) -> LayerSweep {
    let data = subset(data, cfg);
    let baseline = redcane_capsnet::evaluate_clean(model, &data);
    let mut tasks = Vec::new();
    for layer in layers {
        for &nm in &cfg.nm_values {
            tasks.push((
                format!("layer:{layer}:{}", group.number()),
                NoiseTarget::layer(group.op_kind(), layer.clone()),
                nm,
            ));
        }
    }
    let accs = run_cells(model, &data, cfg, &tasks);
    let mut curves = Vec::new();
    let mut it = accs.into_iter();
    for layer in layers {
        let points = cfg
            .nm_values
            .iter()
            .map(|&nm| {
                // lint: allow(panic) — the parallel map returns exactly one result per submitted task
                let accuracy = it.next().expect("one result per task");
                SweepPoint {
                    nm,
                    accuracy,
                    drop_pp: (baseline - accuracy) * 100.0,
                }
            })
            .collect();
        curves.push(Curve {
            target: layer.clone(),
            points,
        });
    }
    LayerSweep {
        model_name: model.name(),
        group,
        baseline_accuracy: baseline,
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::{train, CapsNet, CapsNetConfig, TrainConfig};
    use redcane_datasets::{generate, Benchmark, GenerateConfig};
    use redcane_tensor::TensorRng;

    fn quick_model_and_data() -> (CapsNet, Dataset) {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 150,
                test: 60,
                seed: 5,
            },
        );
        let mut rng = TensorRng::from_seed(210);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        train(
            &mut model,
            &pair.train,
            &TrainConfig {
                epochs: 4,
                batch_size: 16,
                lr: 2e-3,
                seed: 1,
                verbose: false,
            },
        );
        (model, pair.test)
    }

    fn quick_cfg() -> SweepConfig {
        SweepConfig {
            nm_values: vec![0.5, 0.05, 0.001],
            na: 0.0,
            seed: 3,
            max_test_samples: Some(40),
            threads: 2,
        }
    }

    #[test]
    fn group_sweep_shape_and_monotone_tendency() {
        let (model, test) = quick_model_and_data();
        let sweep = group_sweep(&model, &test, &quick_cfg());
        assert_eq!(sweep.curves.len(), 4);
        assert!(sweep.baseline_accuracy > 0.3);
        for c in &sweep.curves {
            assert_eq!(c.points.len(), 3);
            // Accuracy under the heaviest noise never beats the lightest
            // by much (tendency, not strict monotonicity: noise is random).
            let heavy = c.points[0].accuracy;
            let light = c.points[2].accuracy;
            assert!(heavy <= light + 0.15, "{}: {heavy} vs {light}", c.target);
        }
    }

    #[test]
    fn mac_noise_hurts_more_than_softmax_noise() {
        // The paper's headline qualitative result at the group level.
        let (model, test) = quick_model_and_data();
        let sweep = group_sweep(&model, &test, &quick_cfg());
        let mac_at_half = sweep.curve(Group::MacOutputs).points[0].accuracy;
        let softmax_at_half = sweep.curve(Group::Softmax).points[0].accuracy;
        assert!(
            softmax_at_half >= mac_at_half,
            "softmax {softmax_at_half} vs MAC {mac_at_half}"
        );
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let (model, test) = quick_model_and_data();
        let mut cfg = quick_cfg();
        cfg.threads = 1;
        let serial = group_sweep(&model, &test, &cfg);
        cfg.threads = 4;
        let parallel = group_sweep(&model, &test, &cfg);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn layer_sweep_covers_requested_layers() {
        let (model, test) = quick_model_and_data();
        let layers = vec!["Conv1".to_string(), "PrimaryCaps".to_string()];
        let sweep = layer_sweep(&model, &test, Group::MacOutputs, &layers, &quick_cfg());
        assert_eq!(sweep.curves.len(), 2);
        assert_eq!(sweep.curves[0].target, "Conv1");
        assert_eq!(sweep.group, Group::MacOutputs);
    }

    #[test]
    fn critical_nm_logic() {
        let curve = Curve {
            target: Group::MacOutputs,
            points: vec![
                SweepPoint {
                    nm: 0.5,
                    accuracy: 0.2,
                    drop_pp: 70.0,
                },
                SweepPoint {
                    nm: 0.05,
                    accuracy: 0.88,
                    drop_pp: 2.0,
                },
                SweepPoint {
                    nm: 0.001,
                    accuracy: 0.9,
                    drop_pp: 0.0,
                },
            ],
        };
        assert_eq!(curve.critical_nm(1.0), 0.001);
        assert_eq!(curve.critical_nm(5.0), 0.05);
        assert_eq!(curve.critical_nm(100.0), 0.5);
        assert_eq!(curve.critical_nm(-1.0), 0.0);
    }
}
