//! Seeded fault-injection resilience sweep across the quantized
//! datapath, for both of the paper's architectures.
//!
//! Trains (or restores) the small CapsNet and DeepCaps, lowers each
//! onto the exact 8-bit datapath, then injects one discrete fault at a
//! time — weight-code stuck bits, multiplier bit flips, accumulator
//! stuck lanes, activation flips, dead multiplier arrays — at every
//! swept `(layer, op, in-routing)` site and measures the faulted
//! accuracy. One JSON line per trial plus one `site_criticality`
//! summary line per site, to stdout (progress goes to stderr). Usage:
//!
//! ```text
//! faults [--quick] [--benchmark mnist|fashion|svhn|cifar] [--seed N]
//!        [--arch capsnet|deepcaps|both] [--fail-soft] [--max-sites N]
//!        [--out PATH] [--threads N] [--artifacts DIR] [--no-cache]
//!        [--profile PATH] [--profile-counters PATH]
//!        [--profile-folded PATH]
//! ```
//!
//! `--fail-soft` downgrades sites a plan leaves dead to the exact
//! multiplier (the row reports the downgrade); without it, dead-site
//! trials record the backend's refusal. The trained-artifact store is
//! shared with the `qdp` bench: a warm run restores the same weights,
//! ranges and characterization tables instead of training.

use std::process::ExitCode;

use redcane::report::json::Value;
use redcane_artifacts::ArtifactStore;
use redcane_bench::cli::{next_parsed, next_value};
use redcane_bench::faults::{faults_to_json_lines, run_faults, FaultsConfig};
use redcane_bench::profile::ProfileArgs;
use redcane_bench::qdp::QdpArch;
use redcane_datasets::Benchmark;

fn main() -> ExitCode {
    let mut cfg = FaultsConfig::smoke();
    let mut out_path: Option<String> = None;
    let mut artifacts_flag: Option<String> = None;
    let mut no_cache = false;
    let mut profile = ProfileArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let parsed: Result<(), String> = match flag.as_str() {
            "--quick" => {
                // Keep any --seed/--benchmark/--arch/--fail-soft/
                // --max-sites given before the flag; --quick only
                // rescales the run.
                cfg = FaultsConfig {
                    benchmark: cfg.benchmark,
                    seed: cfg.seed,
                    archs: cfg.archs,
                    fail_soft: cfg.fail_soft,
                    max_sites: cfg.max_sites.or(FaultsConfig::quick().max_sites),
                    ..FaultsConfig::quick()
                };
                Ok(())
            }
            "--fail-soft" => {
                cfg.fail_soft = true;
                Ok(())
            }
            "--benchmark" => next_value(&mut args, "--benchmark").and_then(|v| match v.as_str() {
                "mnist" => {
                    cfg.benchmark = Benchmark::MnistLike;
                    Ok(())
                }
                "fashion" => {
                    cfg.benchmark = Benchmark::FashionLike;
                    Ok(())
                }
                "svhn" => {
                    cfg.benchmark = Benchmark::SvhnLike;
                    Ok(())
                }
                "cifar" => {
                    cfg.benchmark = Benchmark::Cifar10Like;
                    Ok(())
                }
                other => Err(format!("unknown benchmark '{other}'")),
            }),
            "--arch" => next_value(&mut args, "--arch").and_then(|v| match v.as_str() {
                "capsnet" => {
                    cfg.archs = vec![QdpArch::CapsNet];
                    Ok(())
                }
                "deepcaps" => {
                    cfg.archs = vec![QdpArch::DeepCaps];
                    Ok(())
                }
                "both" => {
                    cfg.archs = vec![QdpArch::CapsNet, QdpArch::DeepCaps];
                    Ok(())
                }
                other => Err(format!("unknown arch '{other}'")),
            }),
            "--seed" => next_parsed(&mut args, "--seed").map(|v| cfg.seed = v),
            "--max-sites" => {
                next_parsed(&mut args, "--max-sites").map(|v: usize| cfg.max_sites = Some(v))
            }
            "--out" => next_value(&mut args, "--out").map(|v| out_path = Some(v)),
            "--artifacts" => next_value(&mut args, "--artifacts").map(|v| artifacts_flag = Some(v)),
            "--no-cache" => {
                no_cache = true;
                Ok(())
            }
            "--threads" => next_parsed(&mut args, "--threads")
                .map(|v: usize| redcane_tensor::par::set_threads(v)),
            "--help" | "-h" => {
                eprintln!(
                    "faults: per-site bit-flip / stuck-at / dead-output resilience \
                     analysis across the quantized datapath\n\
                     flags: --quick, --benchmark mnist|fashion|svhn|cifar, --seed N, \
                     --arch capsnet|deepcaps|both, --fail-soft, --max-sites N, \
                     --out PATH, --threads N, --artifacts DIR, --no-cache, \
                     --profile PATH, --profile-counters PATH, \
                     --profile-folded PATH"
                );
                return ExitCode::SUCCESS;
            }
            other => profile
                .match_flag(other, &mut args)
                .unwrap_or_else(|| Err(format!("unknown flag '{other}'"))),
        };
        if let Err(msg) = parsed {
            eprintln!("faults: {msg}");
            return ExitCode::FAILURE;
        }
    }

    cfg.artifacts = ArtifactStore::resolve_dir(artifacts_flag.as_deref(), no_cache);
    profile.enable_if_requested();
    let outcome = run_faults(&cfg);
    let lines: Vec<String> = faults_to_json_lines(&outcome)
        .iter()
        .map(|v| v.dump())
        .collect();
    for line in &lines {
        println!("{line}");
    }
    for arch in &outcome.archs {
        eprintln!(
            "[faults] {}: {} ({} trial(s) over {} site(s), baseline {:.3})",
            arch.arch.label(),
            arch.provenance.label(),
            arch.trials.len(),
            arch.sites.len(),
            arch.baseline_accuracy
        );
    }
    eprintln!("[faults] total {:.2}s", outcome.total_s);
    if let Some(path) = out_path {
        let body = lines.join("\n") + "\n";
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("faults: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let meta = vec![(
        "provenance".to_string(),
        Value::Obj(
            outcome
                .archs
                .iter()
                .map(|a| {
                    (
                        a.arch.label().to_string(),
                        Value::from(a.provenance.label()),
                    )
                })
                .collect(),
        ),
    )];
    if let Err(msg) = profile.write("faults", meta, true) {
        eprintln!("faults: {msg}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
