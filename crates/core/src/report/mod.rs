//! The report layer: human-readable summaries and machine-readable
//! serialization of a full methodology run.
//!
//! [`RedCaNeReport`] collects everything Steps 1–6 produce; this module
//! renders it as a one-paragraph summary ([`RedCaNeReport::summary`]) or
//! a single JSON document ([`RedCaNeReport::to_json`]) suitable for
//! benchmark tracking, and round-trips the Step-3 group marking through
//! JSON ([`marking_to_json`] / [`marking_from_json`]).

pub mod json;

use crate::analysis::{Curve, GroupSweep, LayerSweep, SweepPoint};
use crate::groups::{Group, GroupInventory};
use crate::selection::{ApproxDesign, GroupMarking, LayerMarking};
use serde::{Deserialize, Serialize};

use json::Value;

/// Everything the six steps produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedCaNeReport {
    /// Step 1: the operation groups.
    pub inventory: GroupInventory,
    /// Step 2: group-wise resilience curves.
    pub group_sweep: GroupSweep,
    /// Step 3: group marking.
    pub group_marking: GroupMarking,
    /// Step 4: layer-wise curves of each non-resilient group.
    pub layer_sweeps: Vec<LayerSweep>,
    /// Step 5: layer markings.
    pub layer_markings: Vec<LayerMarking>,
    /// Step 6: the approximate CapsNet design, validated.
    pub design: ApproxDesign,
}

impl RedCaNeReport {
    /// A short human-readable summary of the run's outcome.
    pub fn summary(&self) -> String {
        let resilient: Vec<String> = self
            .group_marking
            .entries
            .iter()
            .filter(|(_, _, r)| *r)
            .map(|(g, nm, _)| format!("{g} (critical NM {nm:.3})"))
            .collect();
        let non_resilient: Vec<String> = self
            .group_marking
            .entries
            .iter()
            .filter(|(_, _, r)| !*r)
            .map(|(g, nm, _)| format!("{g} (critical NM {nm:.4})"))
            .collect();
        let measured = match (
            self.design.measured_accuracy,
            self.design.measured_drop_pp(),
        ) {
            (Some(acc), Some(drop)) => {
                format!(
                    ", measured accuracy {:.2}% (drop {:.2} pp)",
                    acc * 100.0,
                    drop
                )
            }
            _ => String::new(),
        };
        format!(
            "ReD-CaNe on {}: baseline {:.2}% | resilient groups: [{}] | \
             non-resilient groups: [{}] | design: mean multiplier power \
             saving {:.1}%, predicted accuracy {:.2}% (drop {:.2} pp){}",
            self.inventory.model_name,
            self.group_sweep.baseline_accuracy * 100.0,
            resilient.join(", "),
            non_resilient.join(", "),
            self.design.mean_power_saving * 100.0,
            self.design.predicted_accuracy * 100.0,
            self.design.predicted_drop_pp(),
            measured,
        )
    }

    /// `(group, critical NM, resilient?)` per group, in marking order.
    pub fn group_status(&self) -> &[(Group, f64, bool)] {
        &self.group_marking.entries
    }

    /// The groups marked resilient in Step 3.
    pub fn resilient_groups(&self) -> Vec<Group> {
        self.group_marking
            .entries
            .iter()
            .filter(|(_, _, r)| *r)
            .map(|(g, _, _)| *g)
            .collect()
    }

    /// The groups marked non-resilient in Step 3.
    pub fn non_resilient_groups(&self) -> Vec<Group> {
        self.group_marking.non_resilient()
    }

    /// The full report as a JSON value.
    pub fn to_json_value(&self) -> Value {
        let groups: Vec<Value> = self
            .group_marking
            .entries
            .iter()
            .map(|(group, critical_nm, resilient)| {
                Value::Obj(vec![
                    ("group".into(), Value::from(group_slug(*group))),
                    ("number".into(), Value::from(group.number())),
                    ("critical_nm".into(), Value::from(*critical_nm)),
                    ("resilient".into(), Value::from(*resilient)),
                    (
                        "curve".into(),
                        curve_points_json(&self.group_sweep.curve(*group).points),
                    ),
                ])
            })
            .collect();
        let layer_sweeps: Vec<Value> = self
            .layer_sweeps
            .iter()
            .map(|ls| {
                Value::Obj(vec![
                    ("group".into(), Value::from(group_slug(ls.group))),
                    (
                        "curves".into(),
                        Value::Arr(
                            ls.curves
                                .iter()
                                .map(|c: &Curve<String>| {
                                    Value::Obj(vec![
                                        ("layer".into(), Value::from(c.target.clone())),
                                        ("points".into(), curve_points_json(&c.points)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let assignments: Vec<Value> = self
            .design
            .assignments
            .iter()
            .map(|a| {
                Value::Obj(vec![
                    ("layer".into(), Value::from(a.layer.clone())),
                    ("group".into(), Value::from(group_slug(a.group))),
                    ("tolerable_nm".into(), Value::from(a.tolerable_nm)),
                    ("component".into(), Value::from(a.component.clone())),
                    ("noise_na".into(), Value::from(a.component_noise.0)),
                    ("noise_nm".into(), Value::from(a.component_noise.1)),
                    ("power_uw".into(), Value::from(a.power_uw)),
                    ("area_um2".into(), Value::from(a.area_um2)),
                ])
            })
            .collect();
        Value::Obj(vec![
            (
                "model".into(),
                Value::from(self.inventory.model_name.clone()),
            ),
            (
                "dataset".into(),
                Value::from(self.group_sweep.dataset_name.clone()),
            ),
            (
                "baseline_accuracy".into(),
                Value::from(self.group_sweep.baseline_accuracy),
            ),
            (
                "total_sites".into(),
                Value::from(self.inventory.total_sites()),
            ),
            ("groups".into(), Value::Arr(groups)),
            ("layer_sweeps".into(), Value::Arr(layer_sweeps)),
            (
                "design".into(),
                Value::Obj(vec![
                    ("assignments".into(), Value::Arr(assignments)),
                    (
                        "mean_power_saving".into(),
                        Value::from(self.design.mean_power_saving),
                    ),
                    (
                        "baseline_accuracy".into(),
                        Value::from(self.design.baseline_accuracy),
                    ),
                    (
                        "predicted_accuracy".into(),
                        Value::from(self.design.predicted_accuracy),
                    ),
                    (
                        "predicted_drop_pp".into(),
                        Value::from(self.design.predicted_drop_pp()),
                    ),
                    (
                        "measured_accuracy".into(),
                        match self.design.measured_accuracy {
                            Some(acc) => Value::from(acc),
                            None => Value::Null,
                        },
                    ),
                    (
                        "measured_drop_pp".into(),
                        match self.design.measured_drop_pp() {
                            Some(drop) => Value::from(drop),
                            None => Value::Null,
                        },
                    ),
                ]),
            ),
        ])
    }

    /// The full report as one line of JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().dump()
    }
}

fn curve_points_json(points: &[SweepPoint]) -> Value {
    Value::Arr(
        points
            .iter()
            .map(|p| {
                Value::Obj(vec![
                    ("nm".into(), Value::from(p.nm)),
                    ("accuracy".into(), Value::from(p.accuracy)),
                    ("drop_pp".into(), Value::from(p.drop_pp)),
                ])
            })
            .collect(),
    )
}

/// Stable machine-readable name of a group.
pub fn group_slug(group: Group) -> &'static str {
    match group {
        Group::MacOutputs => "mac_outputs",
        Group::Activations => "activations",
        Group::Softmax => "softmax",
        Group::LogitsUpdate => "logits_update",
    }
}

/// Inverse of [`group_slug`].
pub fn group_from_slug(slug: &str) -> Option<Group> {
    Group::all().into_iter().find(|g| group_slug(*g) == slug)
}

/// A malformed serialized marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkingDecodeError(pub String);

impl std::fmt::Display for MarkingDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed group marking: {}", self.0)
    }
}

impl std::error::Error for MarkingDecodeError {}

/// Serializes a Step-3 group marking to JSON.
pub fn marking_to_json(marking: &GroupMarking) -> Value {
    Value::Arr(
        marking
            .entries
            .iter()
            .map(|(group, critical_nm, resilient)| {
                Value::Obj(vec![
                    ("group".into(), Value::from(group_slug(*group))),
                    ("critical_nm".into(), Value::from(*critical_nm)),
                    ("resilient".into(), Value::from(*resilient)),
                ])
            })
            .collect(),
    )
}

/// Reconstructs a Step-3 group marking from [`marking_to_json`] output.
///
/// # Errors
///
/// Returns [`MarkingDecodeError`] when the value is not an array of
/// `{group, critical_nm, resilient}` objects with known group slugs.
pub fn marking_from_json(value: &Value) -> Result<GroupMarking, MarkingDecodeError> {
    let items = value
        .as_arr()
        .ok_or_else(|| MarkingDecodeError("expected an array".into()))?;
    let mut entries = Vec::with_capacity(items.len());
    for item in items {
        let slug = item
            .get("group")
            .and_then(Value::as_str)
            .ok_or_else(|| MarkingDecodeError("entry missing string 'group'".into()))?;
        let group = group_from_slug(slug)
            .ok_or_else(|| MarkingDecodeError(format!("unknown group slug '{slug}'")))?;
        let critical_nm = item
            .get("critical_nm")
            .and_then(Value::as_f64)
            .ok_or_else(|| MarkingDecodeError("entry missing number 'critical_nm'".into()))?;
        let resilient = item
            .get("resilient")
            .and_then(Value::as_bool)
            .ok_or_else(|| MarkingDecodeError("entry missing bool 'resilient'".into()))?;
        entries.push((group, critical_nm, resilient));
    }
    Ok(GroupMarking { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Curve;
    use crate::selection::Assignment;

    fn sample_report() -> RedCaNeReport {
        let mk_points = |drops: [f64; 2]| {
            vec![
                SweepPoint {
                    nm: 0.5,
                    accuracy: 0.9 - drops[0] / 100.0,
                    drop_pp: drops[0],
                },
                SweepPoint {
                    nm: 0.01,
                    accuracy: 0.9 - drops[1] / 100.0,
                    drop_pp: drops[1],
                },
            ]
        };
        let curves = vec![
            Curve {
                target: Group::MacOutputs,
                points: mk_points([55.0, 0.4]),
            },
            Curve {
                target: Group::Activations,
                points: mk_points([40.0, 0.2]),
            },
            Curve {
                target: Group::Softmax,
                points: mk_points([0.3, 0.0]),
            },
            Curve {
                target: Group::LogitsUpdate,
                points: mk_points([0.8, 0.0]),
            },
        ];
        RedCaNeReport {
            inventory: GroupInventory {
                model_name: "CapsNet-small".into(),
                sites: Vec::new(),
            },
            group_sweep: GroupSweep {
                model_name: "CapsNet-small".into(),
                dataset_name: "mnist-like-test".into(),
                baseline_accuracy: 0.9,
                curves,
            },
            group_marking: GroupMarking {
                entries: vec![
                    (Group::MacOutputs, 0.01, false),
                    (Group::Activations, 0.01, false),
                    (Group::Softmax, 0.5, true),
                    (Group::LogitsUpdate, 0.5, true),
                ],
            },
            layer_sweeps: vec![LayerSweep {
                model_name: "CapsNet-small".into(),
                group: Group::MacOutputs,
                baseline_accuracy: 0.9,
                curves: vec![Curve {
                    target: "Conv1".to_string(),
                    points: mk_points([30.0, 0.1]),
                }],
            }],
            layer_markings: vec![LayerMarking {
                group: Group::MacOutputs,
                entries: vec![("Conv1".to_string(), 0.01, false)],
            }],
            design: ApproxDesign {
                model_name: "CapsNet-small".into(),
                assignments: vec![Assignment {
                    layer: "Conv1".to_string(),
                    group: Group::MacOutputs,
                    tolerable_nm: 0.01,
                    component: "mul8u_NGR".to_string(),
                    component_noise: (0.0001, 0.004),
                    power_uw: 276.0,
                    area_um2: 350.0,
                }],
                mean_power_saving: 0.31,
                baseline_accuracy: 0.9,
                predicted_accuracy: 0.885,
                measured_accuracy: Some(0.88),
            },
        }
    }

    #[test]
    fn summary_mentions_every_outcome_dimension() {
        let report = sample_report();
        let s = report.summary();
        assert!(s.contains("CapsNet-small"), "{s}");
        assert!(s.contains("baseline 90.00%"), "{s}");
        assert!(s.contains("#3: softmax"), "{s}");
        assert!(s.contains("#1: MAC outputs"), "{s}");
        assert!(s.contains("power"), "{s}");
        assert!(s.contains("drop 1.50 pp"), "{s}");
    }

    #[test]
    fn resilient_partition_is_consistent() {
        let report = sample_report();
        let resilient = report.resilient_groups();
        let non_resilient = report.non_resilient_groups();
        assert_eq!(resilient, vec![Group::Softmax, Group::LogitsUpdate]);
        assert_eq!(non_resilient, vec![Group::MacOutputs, Group::Activations]);
        assert_eq!(resilient.len() + non_resilient.len(), 4);
    }

    #[test]
    fn json_report_is_parseable_and_complete() {
        let report = sample_report();
        let parsed = json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("model").unwrap().as_str(), Some("CapsNet-small"));
        assert_eq!(parsed.get("baseline_accuracy").unwrap().as_f64(), Some(0.9));
        let groups = parsed.get("groups").unwrap().as_arr().unwrap();
        assert_eq!(groups.len(), 4);
        assert_eq!(
            groups[0].get("group").unwrap().as_str(),
            Some("mac_outputs")
        );
        assert_eq!(groups[0].get("resilient").unwrap().as_bool(), Some(false));
        let curve = groups[0].get("curve").unwrap().as_arr().unwrap();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].get("drop_pp").unwrap().as_f64(), Some(55.0));
        let design = parsed.get("design").unwrap();
        assert_eq!(
            design.get("assignments").unwrap().as_arr().unwrap()[0]
                .get("component")
                .unwrap()
                .as_str(),
            Some("mul8u_NGR")
        );
        let drop = design.get("predicted_drop_pp").unwrap().as_f64().unwrap();
        assert!((drop - 1.5).abs() < 1e-9);
        let measured = design.get("measured_drop_pp").unwrap().as_f64().unwrap();
        assert!((measured - 2.0).abs() < 1e-9);
    }

    #[test]
    fn marking_round_trips_through_json() {
        let report = sample_report();
        let encoded = marking_to_json(&report.group_marking);
        let decoded = marking_from_json(&encoded).unwrap();
        assert_eq!(decoded, report.group_marking);
        // And through actual text, not just the value tree.
        let reparsed = json::parse(&encoded.dump()).unwrap();
        assert_eq!(marking_from_json(&reparsed).unwrap(), report.group_marking);
    }

    #[test]
    fn marking_decode_rejects_malformed_input() {
        assert!(marking_from_json(&Value::Null).is_err());
        let missing = Value::Arr(vec![Value::Obj(vec![(
            "group".into(),
            Value::from("mac_outputs"),
        )])]);
        assert!(marking_from_json(&missing).is_err());
        let unknown =
            json::parse("[{\"group\":\"warp_cores\",\"critical_nm\":0.1,\"resilient\":true}]")
                .unwrap();
        assert!(marking_from_json(&unknown).is_err());
    }

    #[test]
    fn group_slugs_are_a_bijection() {
        for g in Group::all() {
            assert_eq!(group_from_slug(group_slug(g)), Some(g));
        }
        assert_eq!(group_from_slug("nope"), None);
    }
}
