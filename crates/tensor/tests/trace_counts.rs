//! Pins the exact deterministic work counts the float datapath reports
//! through `redcane-trace`: GEMM calls/MACs, parallel-helper items and
//! im2col column-matrix bytes. These are *logical* totals — blocking
//! factors, worker counts and chunk sizes must never show through.

use redcane_tensor::ops::{gemm, Conv2dSpec};
use redcane_tensor::{par, Tensor};
use redcane_trace as trace;

/// The trace planes are process-global; tests in this binary take this
/// lock so one test's counts never bleed into another's snapshot.
static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `work` against a clean, enabled trace state and returns the
/// resulting snapshot with tracing switched back off.
fn traced(work: impl FnOnce()) -> trace::Snapshot {
    trace::reset();
    trace::set_enabled(true);
    work();
    let snap = trace::snapshot();
    trace::set_enabled(false);
    snap
}

#[test]
fn gemm_counts_one_call_and_mkn_macs() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let (m, k, n) = (5, 7, 11);
    let a = vec![1.0f32; m * k];
    let b = vec![1.0f32; k * n];
    let mut c = vec![0.0f32; m * n];
    let snap = traced(|| gemm::gemm_nn(&a, &b, &mut c, m, k, n));
    assert_eq!(snap.run(trace::Counter::GemmCalls), 1);
    assert_eq!(snap.run(trace::Counter::GemmMacs), (m * k * n) as u64);
}

#[test]
fn gemm_macs_accumulate_across_calls_and_entry_points() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let (m, k, n) = (4, 3, 8);
    let a = vec![0.5f32; m * k];
    let b = vec![0.5f32; k * n];
    let mut c = vec![0.0f32; m * n];
    let snap = traced(|| {
        gemm::gemm_nn(&a, &b, &mut c, m, k, n);
        gemm::gemm_nn_over(&a, &b, &mut c, m, k, n);
    });
    assert_eq!(snap.run(trace::Counter::GemmCalls), 2);
    assert_eq!(snap.run(trace::Counter::GemmMacs), 2 * (m * k * n) as u64);
}

#[test]
fn par_map_with_counts_logical_items_not_worker_chunks() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let run = |threads: usize| {
        par::set_threads(threads);
        let snap = traced(|| {
            let out = par::map_with(37, || (), |(), i| i * 2);
            assert_eq!(out.len(), 37);
        });
        par::set_threads(0);
        snap
    };
    for threads in [1, 3] {
        let snap = run(threads);
        assert_eq!(snap.run(trace::Counter::ParCalls), 1, "{threads} threads");
        assert_eq!(snap.run(trace::Counter::ParItems), 37, "{threads} threads");
    }
}

#[test]
fn par_for_each_chunk_mut_counts_chunks_including_the_ragged_tail() {
    let _guard = TRACE_LOCK.lock().unwrap();
    // 25 elements in chunks of 4 → 7 logical chunks (one ragged).
    let mut data = vec![0.0f32; 25];
    let snap = traced(|| {
        par::for_each_chunk_mut(&mut data, 4, |i, chunk| {
            chunk.fill(i as f32);
        });
    });
    assert_eq!(snap.run(trace::Counter::ParCalls), 1);
    assert_eq!(
        snap.run(trace::Counter::ParItems),
        25usize.div_ceil(4) as u64
    );
}

#[test]
fn im2col_counts_full_column_matrix_bytes() {
    let _guard = TRACE_LOCK.lock().unwrap();
    // [1, 16, 16] through a 7×7 stride-1 unpadded kernel: 10×10 output
    // positions, 1·7·7 = 49 rows → 49 · 100 slots · 4 bytes = 19600.
    let t = Tensor::from_vec(vec![1.0f32; 16 * 16], &[1, 16, 16]).unwrap();
    let spec = Conv2dSpec::new(7, 1, 0).unwrap();
    let snap = traced(|| {
        let cols = t.im2col(spec).unwrap();
        assert_eq!(cols.shape(), &[49, 100]);
    });
    assert_eq!(snap.run(trace::Counter::Im2colBytes), 49 * 100 * 4);
}

#[test]
fn disabled_tracing_stays_silent_through_the_same_paths() {
    let _guard = TRACE_LOCK.lock().unwrap();
    trace::reset();
    let a = vec![1.0f32; 6];
    let b = vec![1.0f32; 6];
    let mut c = vec![0.0f32; 4];
    gemm::gemm_nn(&a, &b, &mut c, 2, 3, 2);
    par::map_with(10, || (), |(), i| i);
    let snap = trace::snapshot();
    for counter in trace::Counter::ALL {
        assert_eq!(snap.run(counter), 0, "{} leaked", counter.name());
    }
}
