//! # redcane-bench
//!
//! The workspace's benchmark harness. Two binaries build on this crate:
//!
//! - **`probe`** — trains the reference CapsNet and DeepCaps on their
//!   benchmark datasets and reports raw train/evaluate throughput;
//! - **`pipeline`** — runs the complete ReD-CaNe methodology end to end
//!   (dataset generation → tiny CapsNet training → group extraction →
//!   noise sweep → component selection → heterogeneous-design re-score
//!   on the measured quantized datapath) from a fixed seed and emits
//!   one machine-readable JSON line. This is the hook future
//!   perf-tracking (`BENCH_*.json`) builds on.
//!
//! The library exposes the pipeline itself ([`run_pipeline`]) so
//! integration tests can run the exact same code path as the binary and
//! parse the exact same JSON ([`outcome_to_json`]).
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

pub mod cli;
pub mod faults;
pub mod perf;
pub mod profile;
pub mod qdp;
pub mod serve;

use redcane::prelude::*;
use redcane::report::json::Value;
use redcane::report::{group_slug, marking_to_json};
use redcane::{SelectionConfig, SweepConfig};
use redcane_artifacts::{
    fingerprint, load_or_train, ArtifactKey, ArtifactPayload, ArtifactStore, Provenance,
};
use redcane_axmul::MultiplierLibrary;
use redcane_capsnet::{evaluate_clean, train, CapsNet, CapsNetConfig, TrainConfig};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_qdp::{calibrate_ranges, QuantMeasured, QuantRanges};
use redcane_tensor::TensorRng;
use redcane_trace as trace;

/// Everything a pipeline run needs; fully determined by its fields
/// (no hidden global state), so equal configs give equal outcomes.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Which benchmark family to synthesize.
    pub benchmark: Benchmark,
    /// Training samples to generate.
    pub train: usize,
    /// Test samples to generate.
    pub test: usize,
    /// Master seed: dataset, weight init, training order, sweeps and
    /// characterization all derive from it.
    pub seed: u64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Noise magnitudes for the resilience sweeps.
    pub nm_values: Vec<f64>,
    /// Test-subset cap during sweeps.
    pub max_test_samples: Option<usize>,
    /// Worker threads for the sweeps.
    pub threads: usize,
    /// Samples per library-component characterization.
    pub characterization_samples: usize,
    /// Clean training inputs swept through the trained network to
    /// calibrate the quantized datapath the Step-6 design is re-scored
    /// on.
    pub calib_samples: usize,
    /// Trained-artifact store directory: restore the trained weights
    /// and calibrated ranges when a valid entry exists, train (and
    /// persist) otherwise. `None` disables the store (always train,
    /// never save).
    pub artifacts: Option<PathBuf>,
}

impl PipelineConfig {
    /// The fast, seeded smoke configuration: completes in seconds in a
    /// release build while still exercising every pipeline stage with a
    /// model that trains well above chance.
    pub fn smoke() -> Self {
        PipelineConfig {
            benchmark: Benchmark::MnistLike,
            train: 600,
            test: 150,
            seed: 1,
            epochs: 6,
            batch_size: 16,
            lr: 2e-3,
            nm_values: vec![0.5, 0.05, 0.005],
            max_test_samples: Some(40),
            threads: redcane_tensor::par::num_threads(),
            characterization_samples: 4000,
            calib_samples: 32,
            artifacts: None,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::smoke()
    }
}

/// Wall-clock seconds per pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    /// Dataset generation.
    pub generate_s: f64,
    /// Model construction + training + range calibration — or, on an
    /// artifact-store hit, restoring all of it.
    pub train_s: f64,
    /// Accurate-network test evaluation.
    pub evaluate_s: f64,
    /// Quantized-datapath lowering + LUT tabulation (the measured
    /// backend the Step-6 design is re-scored on).
    pub calibrate_s: f64,
    /// The six-step methodology (sweeps dominate).
    pub methodology_s: f64,
}

impl StageTimings {
    /// Total of all stages.
    pub fn total_s(&self) -> f64 {
        self.generate_s + self.train_s + self.evaluate_s + self.calibrate_s + self.methodology_s
    }
}

/// The result of one end-to-end pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The configuration that produced it.
    pub config: PipelineConfig,
    /// Accuracy of the trained accurate network on the full test set.
    pub test_accuracy: f64,
    /// Final-epoch training loss.
    pub final_train_loss: f32,
    /// The full methodology report.
    pub report: RedCaNeReport,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Whether the model was trained this run or restored from the
    /// artifact store. Deliberately **not** part of the JSON schema:
    /// cold and warm runs must emit byte-identical artifacts.
    pub provenance: Provenance,
}

/// Runs dataset generation → training → the six-step ReD-CaNe
/// methodology, deterministically from `cfg.seed`.
///
/// # Panics
///
/// Panics if `cfg.train`, `cfg.test` or `cfg.nm_values` are empty —
/// the methodology needs data and a sweep grid.
pub fn run_pipeline(cfg: &PipelineConfig) -> PipelineOutcome {
    assert!(cfg.train > 0, "pipeline needs training samples");
    assert!(cfg.test > 0, "pipeline needs test samples");
    assert!(!cfg.nm_values.is_empty(), "pipeline needs a sweep grid");

    let _pipeline = trace::span("pipeline");
    let t = Instant::now();
    let pair = {
        let _s = trace::span("generate");
        generate(
            cfg.benchmark,
            &GenerateConfig {
                train: cfg.train,
                test: cfg.test,
                seed: cfg.seed,
            },
        )
    };
    let generate_s = t.elapsed().as_secs_f64();

    let (channels, height, _) = cfg.benchmark.geometry();
    let t = Instant::now();
    let mut rng = TensorRng::from_seed(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
    let mut model = CapsNet::new(&CapsNetConfig::small(channels, height), &mut rng);

    // Weights and calibrated ranges go through the trained-artifact
    // store: restore when a valid entry exists, train-and-persist
    // otherwise. The fingerprint pins every knob the trained content
    // depends on (the sweep knobs deliberately don't invalidate it).
    let store = cfg.artifacts.as_ref().map(ArtifactStore::new);
    let key = ArtifactKey::new(
        "capsnet",
        cfg.benchmark.name(),
        cfg.seed,
        cfg.epochs,
        fingerprint(&format!(
            "pipeline-v1;train={};test={};batch={};lr={:08x};calib={}",
            cfg.train,
            cfg.test,
            cfg.batch_size,
            cfg.lr.to_bits(),
            cfg.calib_samples.max(1)
        )),
    );
    let train_span = trace::span("train");
    let (payload, provenance) = load_or_train(store.as_ref(), &key, &mut model, |m| {
        let report = train(
            m,
            &pair.train,
            &TrainConfig {
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                lr: cfg.lr,
                seed: cfg.seed ^ 0x71a1,
                verbose: false,
            },
        );
        let ranges = calibrate_ranges(
            m,
            pair.train
                .samples
                .iter()
                .take(cfg.calib_samples.max(1))
                .map(|s| &s.image),
        )
        .expect("calibration succeeds on trained activations");
        ArtifactPayload {
            epoch_losses: report.epoch_losses,
            train_accuracy: report.train_accuracy,
            ranges: ranges.to_entries(),
            ..ArtifactPayload::default()
        }
    });
    drop(train_span);
    let train_s = t.elapsed().as_secs_f64();
    eprintln!("[pipeline] capsnet model: {}", provenance.label());

    let t = Instant::now();
    let test_accuracy = {
        let _s = trace::span("evaluate");
        evaluate_clean(&model, &pair.test)
    };
    let evaluate_s = t.elapsed().as_secs_f64();

    // The measured backend: lower the trained network onto the
    // quantized datapath once with the (stored or freshly calibrated)
    // ranges, tabulate the component library. Step 6's heterogeneous
    // design is then re-scored on it — ground truth next to the noise
    // forecast.
    let t = Instant::now();
    let calibrate_span = trace::span("calibrate");
    let library = MultiplierLibrary::evo_approx_like();
    let ranges = QuantRanges::from_entries(&payload.ranges);
    let measured = QuantMeasured::from_ranges(&model, &ranges, &library)
        .expect("lowering succeeds on the calibrated ranges");
    drop(calibrate_span);
    let calibrate_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let methodology_span = trace::span("methodology");
    let methodology = RedCaNe::with_library(
        MethodologyConfig {
            sweep: SweepConfig {
                nm_values: cfg.nm_values.clone(),
                na: 0.0,
                seed: cfg.seed ^ 0x5eed,
                max_test_samples: cfg.max_test_samples,
                threads: cfg.threads,
            },
            selection: SelectionConfig {
                characterization_samples: cfg.characterization_samples,
                seed: cfg.seed ^ 0xc0de,
                ..Default::default()
            },
            input_distribution: None,
        },
        library,
    );
    let report = methodology.run_with_measured(&model, &pair.test, &measured);
    drop(methodology_span);
    let methodology_s = t.elapsed().as_secs_f64();

    PipelineOutcome {
        config: cfg.clone(),
        test_accuracy,
        final_train_loss: payload.epoch_losses.last().copied().unwrap_or(0.0),
        report,
        timings: StageTimings {
            generate_s,
            train_s,
            evaluate_s,
            calibrate_s,
            methodology_s,
        },
        provenance,
    }
}

/// Serializes an outcome as the pipeline's one-line JSON schema:
/// run metadata, stage timings, the accuracy drop per group (critical
/// NM + full sweep curve) and the selected components.
pub fn outcome_to_json(outcome: &PipelineOutcome) -> Value {
    let report = &outcome.report;
    let groups: Vec<Value> = report
        .group_marking
        .entries
        .iter()
        .map(|(group, critical_nm, resilient)| {
            let curve = report.group_sweep.curve(*group);
            Value::Obj(vec![
                ("group".into(), Value::from(group_slug(*group))),
                ("critical_nm".into(), Value::from(*critical_nm)),
                ("resilient".into(), Value::from(*resilient)),
                (
                    "drop_pp".into(),
                    Value::Arr(
                        curve
                            .points
                            .iter()
                            .map(|p| Value::from(p.drop_pp))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let components: Vec<Value> = report
        .design
        .assignments
        .iter()
        .map(|a| {
            Value::Obj(vec![
                ("layer".into(), Value::from(a.layer.clone())),
                ("group".into(), Value::from(group_slug(a.group))),
                ("component".into(), Value::from(a.component.clone())),
                ("power_uw".into(), Value::from(a.power_uw)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("bench".into(), Value::from("pipeline")),
        // v2: the Step-6 design carries predicted AND measured
        // accuracy (re-scored on the quantized datapath), replacing the
        // v1 `validated_*` fields.
        ("schema_version".into(), Value::from(2usize)),
        (
            "benchmark".into(),
            Value::from(outcome.config.benchmark.name()),
        ),
        // As a string: u64 seeds above 2^53 would silently round through
        // a JSON number, breaking the record's reproducibility.
        ("seed".into(), Value::from(outcome.config.seed.to_string())),
        (
            "model".into(),
            Value::from(report.inventory.model_name.clone()),
        ),
        (
            "nm_values".into(),
            Value::Arr(
                outcome
                    .config
                    .nm_values
                    .iter()
                    .map(|&v| Value::from(v))
                    .collect(),
            ),
        ),
        (
            "timings_s".into(),
            Value::Obj(vec![
                ("generate".into(), Value::from(outcome.timings.generate_s)),
                ("train".into(), Value::from(outcome.timings.train_s)),
                ("evaluate".into(), Value::from(outcome.timings.evaluate_s)),
                ("calibrate".into(), Value::from(outcome.timings.calibrate_s)),
                (
                    "methodology".into(),
                    Value::from(outcome.timings.methodology_s),
                ),
                ("total".into(), Value::from(outcome.timings.total_s())),
            ]),
        ),
        ("test_accuracy".into(), Value::from(outcome.test_accuracy)),
        (
            "final_train_loss".into(),
            Value::from(f64::from(outcome.final_train_loss)),
        ),
        (
            "baseline_accuracy".into(),
            Value::from(report.group_sweep.baseline_accuracy),
        ),
        ("groups".into(), Value::Arr(groups)),
        ("marking".into(), marking_to_json(&report.group_marking)),
        ("components".into(), Value::Arr(components)),
        (
            "mean_power_saving".into(),
            Value::from(report.design.mean_power_saving),
        ),
        (
            "predicted_accuracy".into(),
            Value::from(report.design.predicted_accuracy),
        ),
        (
            "predicted_drop_pp".into(),
            Value::from(report.design.predicted_drop_pp()),
        ),
        (
            "measured_accuracy".into(),
            match report.design.measured_accuracy {
                Some(acc) => Value::from(acc),
                None => Value::Null,
            },
        ),
        (
            "measured_drop_pp".into(),
            match report.design.measured_drop_pp() {
                Some(drop) => Value::from(drop),
                None => Value::Null,
            },
        ),
    ])
}

/// [`outcome_to_json`] without the wall-clock `timings_s` field: the
/// byte-stable subset, identical between a cold (train) run and a warm
/// (artifact-restore) run, at any thread count. CI's determinism checks
/// `cmp` this form.
pub fn outcome_to_json_stable(outcome: &PipelineOutcome) -> Value {
    outcome_to_json(outcome).without_keys(&["timings_s"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane::report::json;

    #[test]
    fn smoke_config_is_fast_shaped() {
        let cfg = PipelineConfig::smoke();
        assert!(cfg.train <= 1000);
        assert!(cfg.nm_values.len() <= 4);
        assert!(cfg.max_test_samples.is_some());
    }

    #[test]
    fn pipeline_json_schema_is_stable() {
        // A tiny but real run; keeps the schema test honest without
        // needing minutes of training.
        let cfg = PipelineConfig {
            train: 40,
            test: 20,
            epochs: 1,
            characterization_samples: 1000,
            max_test_samples: Some(10),
            nm_values: vec![0.5, 0.005],
            ..PipelineConfig::smoke()
        };
        let outcome = run_pipeline(&cfg);
        let line = outcome_to_json(&outcome).dump();
        assert!(!line.contains('\n'), "must be a single line");
        let parsed = json::parse(&line).unwrap();
        for key in [
            "bench",
            "schema_version",
            "benchmark",
            "seed",
            "timings_s",
            "test_accuracy",
            "baseline_accuracy",
            "groups",
            "components",
            "predicted_accuracy",
            "predicted_drop_pp",
            "measured_accuracy",
            "measured_drop_pp",
        ] {
            assert!(parsed.get(key).is_some(), "missing key {key}");
        }
        // The heterogeneous design was re-scored on the measured
        // datapath: both drops are real numbers.
        assert!(parsed.get("measured_accuracy").unwrap().as_f64().is_some());
        assert!(parsed.get("measured_drop_pp").unwrap().as_f64().is_some());
        let groups = parsed.get("groups").unwrap().as_arr().unwrap();
        assert_eq!(groups.len(), 4, "accuracy drop per group");
        for g in groups {
            assert!(g.get("critical_nm").unwrap().as_f64().is_some());
            assert_eq!(
                g.get("drop_pp").unwrap().as_arr().unwrap().len(),
                cfg.nm_values.len()
            );
        }
        assert!(!parsed
            .get("components")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn equal_seeds_give_equal_json() {
        let cfg = PipelineConfig {
            train: 30,
            test: 12,
            epochs: 1,
            characterization_samples: 500,
            max_test_samples: Some(8),
            nm_values: vec![0.5],
            threads: 2,
            ..PipelineConfig::smoke()
        };
        let a = outcome_to_json_stable(&run_pipeline(&cfg));
        let mut cfg_b = cfg.clone();
        cfg_b.threads = 1; // determinism must not depend on parallelism
        let b = outcome_to_json_stable(&run_pipeline(&cfg_b));
        // Timings differ run to run; the stable form strips them.
        assert_eq!(a, b);
    }

    /// The artifact-store acceptance bar: a cold (train) run and a warm
    /// (restore) run emit byte-identical stable JSON, and both match a
    /// storeless run. The warm run must not train at all.
    #[test]
    fn cold_and_warm_runs_give_identical_json() {
        let dir = std::env::temp_dir().join(format!(
            "redcane-bench-pipeline-store-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = PipelineConfig {
            train: 30,
            test: 12,
            epochs: 1,
            characterization_samples: 500,
            max_test_samples: Some(8),
            nm_values: vec![0.5],
            artifacts: Some(dir.clone()),
            ..PipelineConfig::smoke()
        };
        let cold = run_pipeline(&cfg);
        assert_eq!(cold.provenance, Provenance::Trained);
        let warm = run_pipeline(&cfg);
        assert_eq!(warm.provenance, Provenance::Restored);
        let uncached = run_pipeline(&PipelineConfig {
            artifacts: None,
            ..cfg.clone()
        });
        assert_eq!(uncached.provenance, Provenance::Trained);
        let dump = |o: &PipelineOutcome| outcome_to_json_stable(o).dump();
        assert_eq!(dump(&cold), dump(&warm));
        assert_eq!(dump(&cold), dump(&uncached));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
