//! `redcane-trace`: instrumentation for the whole ReD-CaNe datapath,
//! in two planes.
//!
//! **Plane 1 — deterministic work counters.** A fixed vocabulary of
//! [`Counter`]s (GEMM/qgemm calls and MAC counts, LUT rows fetched,
//! `LutCache` hits/misses, im2col bytes moved, artifact-store
//! hits/misses/heals, `par` invocations and items, training epochs,
//! fault sites applied) accumulated in per-worker thread-local
//! collectors and merged into global totals. Because every hook counts
//! *logical work* (items, calls, MACs — never worker chunks) and `u64`
//! addition is associative and commutative, the merged totals are
//! bit-identical at every `REDCANE_THREADS` setting — the same
//! invariance contract the kernels themselves obey. Counters are
//! additionally split by [`Region`]: work done while *producing* a
//! trained artifact (training, calibration, characterization) lands in
//! [`Region::Train`], everything else in [`Region::Run`], so the
//! run-region totals are byte-identical between a cold (train) and a
//! warm (restore) artifact store.
//!
//! **Plane 2 — hierarchical wall-clock spans.** [`span`] opens a named
//! scope on a thread-local stack; on drop, the elapsed nanoseconds are
//! folded into a global path-keyed table (`train;epoch`,
//! `qdp;score;Conv1`, …) that serializes as a span tree or as
//! folded-stack lines for flamegraph tooling. Span timings are wall
//! clock and therefore *never* deterministic; consumers keep them in a
//! separate timings section and redact them wherever outputs are
//! byte-compared (the same rule as pipeline `--no-timings`).
//!
//! **Plane 1½ — structured events.** [`emit`] records discrete
//! occurrences (artifact-store heals, save failures) so they appear in
//! the profile instead of raw stderr; it reports whether the event was
//! captured so callers can fall back to their legacy logging when
//! tracing is off.
//!
//! Everything is **disabled by default**: each hook costs one relaxed
//! atomic load ([`enabled`]) and returns. Benchmarks opt in per run
//! with [`set_enabled`]; the `perf` bench pins the disabled-path
//! overhead on the qgemm kernel at < 5%.
//!
//! # Threading contract
//!
//! Worker threads (always scoped — `redcane_tensor::par` and the
//! serving engine join every worker before returning) call [`flush`]
//! at the end of their spawned closure, so a [`snapshot`] taken
//! between parallel regions on the coordinating thread sees every
//! contribution. The thread-local destructor also flushes as a
//! backstop, but scoped workers cannot rely on it alone: the scope
//! unblocks when the closure returns, while TLS destructors run during
//! the later thread teardown — a snapshot in that window would miss
//! (and a subsequent [`reset`] misattribute) the worker's counts.
//! [`reset`] and [`snapshot`] must be called when no workers are live
//! (true at every bench-binary call site, where parallel regions never
//! outlive a pipeline stage).
#![forbid(unsafe_code)]
// Pedantic clippy is enforced crate-wide here (CI runs clippy with -D
// warnings): this crate sits on the serving/observability boundary where
// API polish (must_use, doc completeness) pays off most.
#![warn(clippy::pedantic)]

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The fixed work-counter vocabulary. Every variant counts *logical*
/// work — calls, items, MACs, bytes — never per-worker artifacts like
/// chunks or spawned threads, so totals are invariant across
/// `REDCANE_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    /// Float GEMM entry-point calls (`gemm_nn/tn/nt` + overwrite
    /// variants; batched GEMMs count once per batch slice).
    GemmCalls,
    /// Float multiply-accumulates: `m·k·n` per GEMM call.
    GemmMacs,
    /// Quantized GEMM (`qgemm_nn`) calls.
    QgemmCalls,
    /// Quantized multiply-accumulates: `m·k·n` per qgemm call.
    QgemmMacs,
    /// 256-entry `MulLut` rows fetched by qgemm (counted analytically
    /// per call, matching the kernel's dispatch: the tall-`k`
    /// register-tile path re-fetches each row once per column tile).
    LutRowFetches,
    /// `LutCache` lookups that found a tabulated component.
    LutCacheHits,
    /// `LutCache` lookups that missed.
    LutCacheMisses,
    /// Bytes materialized by im2col lowering (`rows · cols · 4`).
    Im2colBytes,
    /// `par` parallel-for invocations (not worker spawns).
    ParCalls,
    /// Items submitted across all `par` invocations.
    ParItems,
    /// Training epochs executed.
    TrainEpochs,
    /// Fault-plan sites applied while resolving a datapath.
    FaultSitesApplied,
    /// Artifact-store entries restored (**unstable**: cold vs warm).
    ArtifactHits,
    /// Artifact-store lookups that missed (**unstable**).
    ArtifactMisses,
    /// Artifact-store entries healed after corruption (**unstable**).
    ArtifactHeals,
    /// Requests enqueued into a serving queue.
    ServeRequests,
    /// Batches the dynamic batcher formed.
    ServeBatches,
    /// Requests coalesced into batches (items across all batches).
    ServeItemsCoalesced,
    /// Largest batch formed (max-merged via [`add_max`], not summed).
    ServeBatchMax,
}

/// Number of [`Counter`] variants.
pub const NUM_COUNTERS: usize = 19;

impl Counter {
    /// Every counter, in serialization order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::GemmCalls,
        Counter::GemmMacs,
        Counter::QgemmCalls,
        Counter::QgemmMacs,
        Counter::LutRowFetches,
        Counter::LutCacheHits,
        Counter::LutCacheMisses,
        Counter::Im2colBytes,
        Counter::ParCalls,
        Counter::ParItems,
        Counter::TrainEpochs,
        Counter::FaultSitesApplied,
        Counter::ArtifactHits,
        Counter::ArtifactMisses,
        Counter::ArtifactHeals,
        Counter::ServeRequests,
        Counter::ServeBatches,
        Counter::ServeItemsCoalesced,
        Counter::ServeBatchMax,
    ];

    /// Stable `snake_case` name used in JSON artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::GemmCalls => "gemm_calls",
            Counter::GemmMacs => "gemm_macs",
            Counter::QgemmCalls => "qgemm_calls",
            Counter::QgemmMacs => "qgemm_macs",
            Counter::LutRowFetches => "lut_row_fetches",
            Counter::LutCacheHits => "lut_cache_hits",
            Counter::LutCacheMisses => "lut_cache_misses",
            Counter::Im2colBytes => "im2col_bytes",
            Counter::ParCalls => "par_calls",
            Counter::ParItems => "par_items",
            Counter::TrainEpochs => "train_epochs",
            Counter::FaultSitesApplied => "fault_sites_applied",
            Counter::ArtifactHits => "artifact_hits",
            Counter::ArtifactMisses => "artifact_misses",
            Counter::ArtifactHeals => "artifact_heals",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeBatches => "serve_batches",
            Counter::ServeItemsCoalesced => "serve_items_coalesced",
            Counter::ServeBatchMax => "serve_batch_max",
        }
    }

    /// Whether the counter's [`Region::Run`] total is *stable* — equal
    /// across thread counts **and** across cold vs warm artifact
    /// stores, so it belongs in the byte-compared counter section of a
    /// profile. Store traffic is inherently cache-state-dependent, so
    /// the artifact counters are excluded. The serve-plane counters
    /// stay stable because `redcane-serve`'s fill-only batching mode
    /// (the only mode profiled runs use) cuts batches purely by stream
    /// position, never by wall clock or worker count.
    #[must_use]
    pub fn stable(self) -> bool {
        !matches!(
            self,
            Counter::ArtifactHits | Counter::ArtifactMisses | Counter::ArtifactHeals
        )
    }
}

/// Which accounting bucket work lands in. Producing a trained artifact
/// (training, calibration, characterization) only happens on a cold
/// store, so it is kept out of the byte-compared run totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Region {
    /// Everything outside artifact production (the default).
    Run = 0,
    /// Inside an artifact-store `produce` closure.
    Train = 1,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGION: AtomicUsize = AtomicUsize::new(Region::Run as usize);
static TOTALS: [AtomicU64; 2 * NUM_COUNTERS] = [const { AtomicU64::new(0) }; 2 * NUM_COUNTERS];

/// A thread's local counter buffer; flushed into [`TOTALS`] when the
/// thread exits (scoped workers exit before their scope returns) or
/// when the thread itself takes a [`snapshot`].
struct LocalBuf {
    counts: [Cell<u64>; 2 * NUM_COUNTERS],
}

impl LocalBuf {
    const fn new() -> LocalBuf {
        LocalBuf {
            counts: [const { Cell::new(0) }; 2 * NUM_COUNTERS],
        }
    }

    fn flush(&self) {
        for (slot, local) in TOTALS.iter().zip(&self.counts) {
            let n = local.replace(0);
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: LocalBuf = const { LocalBuf::new() };
}

/// Whether tracing is on — the one relaxed atomic load every hook
/// pays on the disabled fast path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off process-wide. Benchmarks enable it after a
/// [`reset`] and disable it after writing their profile.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Adds `n` to a counter in the current [`Region`]. No-op while
/// tracing is disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    let idx = REGION.load(Ordering::Relaxed) * NUM_COUNTERS + counter as usize;
    LOCAL.with(|buf| {
        let cell = &buf.counts[idx];
        cell.set(cell.get().wrapping_add(n));
    });
}

/// Folds `n` into a counter by **max** instead of addition (batch-size
/// peaks). Writes the global slot directly, bypassing the additive
/// thread-local buffers — max does not commute with the per-thread
/// flush addition — so it is safe to call from any thread; the cost is
/// one `fetch_max` per call, which max-semantics counters pay rarely
/// (once per batch, not once per item). No-op while tracing is
/// disabled.
#[inline]
pub fn add_max(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    let idx = REGION.load(Ordering::Relaxed) * NUM_COUNTERS + counter as usize;
    TOTALS[idx].fetch_max(n, Ordering::Relaxed);
}

/// An RAII guard restoring the previous [`Region`] on drop.
pub struct RegionGuard {
    prev: usize,
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        REGION.store(self.prev, Ordering::Relaxed);
    }
}

/// Enters `region` until the returned guard drops. The region is
/// process-global (worker threads spawned inside the guard inherit
/// it), which is exactly what artifact production wants: everything a
/// `produce` closure does — including its parallel training — lands in
/// [`Region::Train`].
#[must_use = "the region reverts when the guard drops"]
pub fn region(region: Region) -> RegionGuard {
    RegionGuard {
        prev: REGION.swap(region as usize, Ordering::Relaxed),
    }
}

/// An immutable copy of all counter totals, split by region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    totals: [u64; 2 * NUM_COUNTERS],
}

impl Snapshot {
    /// The total for `counter` in `region`.
    #[must_use]
    pub fn get(&self, region: Region, counter: Counter) -> u64 {
        self.totals[region as usize * NUM_COUNTERS + counter as usize]
    }

    /// Shorthand for the [`Region::Run`] total.
    #[must_use]
    pub fn run(&self, counter: Counter) -> u64 {
        self.get(Region::Run, counter)
    }

    /// Shorthand for the [`Region::Train`] total.
    #[must_use]
    pub fn train(&self, counter: Counter) -> u64 {
        self.get(Region::Train, counter)
    }
}

/// Flushes the current thread's buffered counts into the global
/// totals. Long-lived worker threads must call this at the end of
/// their run loop, *before* the coordinator can snapshot: relying on
/// the thread-local destructor is racy for `std::thread::scope`
/// workers, whose scope unblocks when the spawned closure returns
/// while TLS destructors run during the later thread teardown.
pub fn flush() {
    LOCAL.with(LocalBuf::flush);
}

/// Snapshots every counter total. Call from the coordinating thread
/// with no live workers (scoped workers have already flushed).
pub fn snapshot() -> Snapshot {
    LOCAL.with(LocalBuf::flush);
    let mut totals = [0u64; 2 * NUM_COUNTERS];
    for (out, slot) in totals.iter_mut().zip(&TOTALS) {
        *out = slot.load(Ordering::Relaxed);
    }
    Snapshot { totals }
}

/// Clears all counters, span statistics and events, and resets the
/// region to [`Region::Run`]. Call from the coordinating thread with
/// no live workers.
///
/// # Panics
///
/// Panics if a global trace table lock is poisoned — that is, if
/// another thread already panicked while holding it.
pub fn reset() {
    LOCAL.with(|buf| {
        for cell in &buf.counts {
            cell.set(0);
        }
    });
    for slot in &TOTALS {
        slot.store(0, Ordering::Relaxed);
    }
    REGION.store(Region::Run as usize, Ordering::Relaxed);
    // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
    spans_table().lock().expect("span table poisoned").clear();
    // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
    events_table().lock().expect("event table poisoned").clear();
    STACK.with(|stack| stack.borrow_mut().clear());
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// Aggregated wall-clock statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Total nanoseconds spent inside the span (children included).
    pub ns: u64,
    /// Number of times the span was entered.
    pub count: u64,
}

/// Separator joining span names into a path key (`train;epoch`).
pub const PATH_SEPARATOR: char = ';';

fn spans_table() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static SPANS: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());
    &SPANS
}

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records its elapsed time under the thread's current
/// span path when dropped.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join(&PATH_SEPARATOR.to_string());
            stack.pop();
            path
        });
        // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
        let mut table = spans_table().lock().expect("span table poisoned");
        let agg = table.entry(path).or_default();
        agg.ns = agg.ns.saturating_add(ns);
        agg.count += 1;
    }
}

/// Opens a named span on the current thread's span stack. While
/// tracing is disabled this neither allocates nor reads the clock.
///
/// Span names must not contain [`PATH_SEPARATOR`].
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { start: None };
    }
    debug_assert!(
        !name.contains(PATH_SEPARATOR),
        "span name {name:?} contains the path separator"
    );
    STACK.with(|stack| stack.borrow_mut().push(name.to_string()));
    Span {
        start: Some(Instant::now()),
    }
}

/// Every recorded span path with its aggregated statistics, sorted by
/// path (a parent sorts before its children, so the list rebuilds the
/// tree in order).
///
/// # Panics
///
/// Panics if a global trace table lock is poisoned — that is, if
/// another thread already panicked while holding it.
#[must_use]
pub fn span_stats() -> Vec<(String, SpanStat)> {
    spans_table()
        .lock()
        // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
        .expect("span table poisoned")
        .iter()
        .map(|(path, stat)| (path.clone(), *stat))
        .collect()
}

/// The span table in folded-stack form — one `path ns` line per path,
/// directly consumable by flamegraph tooling.
#[must_use]
pub fn folded() -> String {
    let mut out = String::new();
    for (path, stat) in span_stats() {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&stat.ns.to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// A discrete structured occurrence (artifact heal, save failure, …)
/// captured for the profile instead of raw stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Stable event kind (`artifact_heal`, `artifact_save_failed`, …).
    pub kind: &'static str,
    /// Free-form detail (paths, error text).
    pub detail: String,
}

fn events_table() -> &'static Mutex<Vec<Event>> {
    static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    &EVENTS
}

/// Records a structured event; returns whether it was captured (false
/// while tracing is disabled, so callers can fall back to legacy
/// stderr logging).
///
/// # Panics
///
/// Panics if a global trace table lock is poisoned — that is, if
/// another thread already panicked while holding it.
pub fn emit(kind: &'static str, detail: impl Into<String>) -> bool {
    if !enabled() {
        return false;
    }
    events_table()
        .lock()
        // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
        .expect("event table poisoned")
        .push(Event {
            kind,
            detail: detail.into(),
        });
    true
}

/// Every event recorded since the last [`reset`], in emission order.
///
/// # Panics
///
/// Panics if a global trace table lock is poisoned — that is, if
/// another thread already panicked while holding it.
#[must_use]
pub fn events() -> Vec<Event> {
    // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
    events_table().lock().expect("event table poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trace state is process-global; serialize the tests.
    static LOCK: Mutex<()> = Mutex::new(());

    fn isolated() -> std::sync::MutexGuard<'static, ()> {
        let guard = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        set_enabled(true);
        guard
    }

    #[test]
    fn disabled_hooks_record_nothing() {
        let _guard = isolated();
        set_enabled(false);
        add(Counter::GemmCalls, 3);
        let _span = span("ignored");
        assert!(!emit("ignored", "nothing"));
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.run(Counter::GemmCalls), 0);
        assert!(span_stats().is_empty());
        assert!(events().is_empty());
    }

    #[test]
    fn counters_split_by_region_and_reset_clears() {
        let _guard = isolated();
        add(Counter::QgemmMacs, 100);
        {
            let _train = region(Region::Train);
            add(Counter::QgemmMacs, 7);
            add(Counter::TrainEpochs, 1);
        }
        add(Counter::QgemmMacs, 11);
        let snap = snapshot();
        assert_eq!(snap.run(Counter::QgemmMacs), 111);
        assert_eq!(snap.train(Counter::QgemmMacs), 7);
        assert_eq!(snap.train(Counter::TrainEpochs), 1);
        assert_eq!(snap.run(Counter::TrainEpochs), 0);
        reset();
        assert_eq!(snapshot().run(Counter::QgemmMacs), 0);
        assert_eq!(snapshot().train(Counter::QgemmMacs), 0);
    }

    #[test]
    fn worker_contributions_merge_into_the_totals() {
        let _guard = isolated();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| add(Counter::ParItems, 5));
            }
        });
        add(Counter::ParItems, 1);
        assert_eq!(snapshot().run(Counter::ParItems), 21);
    }

    #[test]
    fn spans_nest_into_paths_and_fold() {
        let _guard = isolated();
        {
            let _outer = span("train");
            for _ in 0..3 {
                let _inner = span("epoch");
            }
        }
        let stats: BTreeMap<String, SpanStat> = span_stats().into_iter().collect();
        assert_eq!(stats["train"].count, 1);
        assert_eq!(stats["train;epoch"].count, 3);
        assert!(stats["train"].ns >= stats["train;epoch"].ns);
        let folded = folded();
        assert!(folded.lines().any(|l| l.starts_with("train;epoch ")));
        assert_eq!(folded.lines().count(), 2);
    }

    #[test]
    fn events_record_in_order() {
        let _guard = isolated();
        assert!(emit("artifact_heal", "entry a"));
        assert!(emit("artifact_save_failed", "entry b"));
        let events = events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "artifact_heal");
        assert_eq!(events[1].detail, "entry b");
    }

    #[test]
    fn add_max_keeps_the_peak_across_threads_and_regions() {
        let _guard = isolated();
        std::thread::scope(|scope| {
            for n in [3u64, 9, 5] {
                scope.spawn(move || add_max(Counter::ServeBatchMax, n));
            }
        });
        add_max(Counter::ServeBatchMax, 7);
        assert_eq!(snapshot().run(Counter::ServeBatchMax), 9);
        {
            let _train = region(Region::Train);
            add_max(Counter::ServeBatchMax, 100);
        }
        let snap = snapshot();
        assert_eq!(snap.run(Counter::ServeBatchMax), 9);
        assert_eq!(snap.train(Counter::ServeBatchMax), 100);
        set_enabled(false);
        add_max(Counter::ServeBatchMax, 1000);
        assert_eq!(snap.run(Counter::ServeBatchMax), 9);
    }

    #[test]
    fn counter_names_are_unique_and_stability_marks_store_traffic() {
        let names: std::collections::BTreeSet<&str> =
            Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), NUM_COUNTERS);
        let unstable: Vec<&str> = Counter::ALL
            .iter()
            .filter(|c| !c.stable())
            .map(|c| c.name())
            .collect();
        assert_eq!(
            unstable,
            vec!["artifact_hits", "artifact_misses", "artifact_heals"]
        );
    }
}
