//! Steps 3, 5 and 6 — resilience marking and approximate-component
//! selection.
//!
//! Step 6 closes the loop: every `(layer, group)` operation gets the
//! **cheapest** multiplier from the component library whose measured noise
//! magnitude fits within that operation's tolerable `NM` (derived from the
//! sweeps of Steps 2 and 4). The output is an *approximate CapsNet
//! design*, validated end-to-end through the
//! [`AccuracyBackend`](crate::datapath::AccuracyBackend) trait: always
//! on the noise-predicted backend (every operation simulated with its
//! component's `(NA, NM)`), and — when a measured backend is supplied —
//! re-scored on the real quantized datapath, so the heterogeneous
//! design's forecast and its ground truth come from interchangeable
//! code paths.

use redcane_axmul::error_stats::InputDistribution;
use redcane_axmul::library::MultiplierLibrary;
use redcane_axmul::NoiseParams;
use redcane_capsnet::inject::OpKind;
use redcane_capsnet::{evaluate, CapsModel};
use redcane_datasets::Dataset;
use serde::{Deserialize, Serialize};

use crate::analysis::{GroupSweep, LayerSweep};
use crate::datapath::{AccuracyBackend, DatapathAssignment, NoisePredicted};
use crate::groups::Group;

/// Thresholds governing resilience marking and component choice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// Maximum tolerated accuracy drop (percentage points) when deriving
    /// critical noise magnitudes.
    pub max_drop_pp: f64,
    /// A group/layer is *resilient* when its critical `NM` is at least
    /// this large.
    pub resilient_nm_threshold: f64,
    /// Safety factor applied to the tolerable `NM` before matching
    /// components (1.0 = none; 0.5 = pick components twice as accurate).
    pub safety_factor: f64,
    /// Samples used to characterize each library component.
    pub characterization_samples: usize,
    /// Seed for component characterization.
    pub seed: u64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            max_drop_pp: 1.0,
            resilient_nm_threshold: 0.05,
            safety_factor: 1.0,
            characterization_samples: 20_000,
            seed: 1234,
        }
    }
}

/// Step-3 output: each group marked resilient or not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupMarking {
    /// `(group, critical NM, resilient?)` per group.
    pub entries: Vec<(Group, f64, bool)>,
}

impl GroupMarking {
    /// Groups marked non-resilient (the ones Step 4 analyzes per layer).
    pub fn non_resilient(&self) -> Vec<Group> {
        self.entries
            .iter()
            .filter(|(_, _, resilient)| !resilient)
            .map(|(g, _, _)| *g)
            .collect()
    }

    /// The critical `NM` recorded for `group`.
    pub fn critical_nm(&self, group: Group) -> f64 {
        self.entries
            .iter()
            .find(|(g, _, _)| *g == group)
            .map(|(_, nm, _)| *nm)
            .unwrap_or(0.0)
    }
}

/// **Step 3** — marks each group of a Step-2 sweep as resilient or not.
pub fn mark_groups(sweep: &GroupSweep, cfg: &SelectionConfig) -> GroupMarking {
    let entries = sweep
        .curves
        .iter()
        .map(|c| {
            let critical = c.critical_nm(cfg.max_drop_pp);
            (c.target, critical, critical >= cfg.resilient_nm_threshold)
        })
        .collect();
    GroupMarking { entries }
}

/// Step-5 output: per-layer critical `NM` within one group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerMarking {
    /// The group analyzed.
    pub group: Group,
    /// `(layer, critical NM, resilient?)` in network order.
    pub entries: Vec<(String, f64, bool)>,
}

/// **Step 5** — marks each layer of a Step-4 sweep as resilient or not.
pub fn mark_layers(sweep: &LayerSweep, cfg: &SelectionConfig) -> LayerMarking {
    let entries = sweep
        .curves
        .iter()
        .map(|c| {
            let critical = c.critical_nm(cfg.max_drop_pp);
            (
                c.target.clone(),
                critical,
                critical >= cfg.resilient_nm_threshold,
            )
        })
        .collect();
    LayerMarking {
        group: sweep.group,
        entries,
    }
}

/// One operation's selected component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Layer the operation lives in.
    pub layer: String,
    /// Which group the operation belongs to.
    pub group: Group,
    /// Tolerable noise magnitude derived from the sweeps (after the
    /// safety factor).
    pub tolerable_nm: f64,
    /// Selected component name (`mul8u_…`).
    pub component: String,
    /// The component's measured noise parameters.
    pub component_noise: (f64, f64),
    /// The component's power in µW.
    pub power_uw: f64,
    /// The component's area in µm².
    pub area_um2: f64,
}

/// Step-6 output: the approximate CapsNet design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproxDesign {
    /// Model display name.
    pub model_name: String,
    /// Per-operation component assignments.
    pub assignments: Vec<Assignment>,
    /// Mean multiplier-power saving across assignments vs the exact
    /// component, in `[0, 1]`.
    pub mean_power_saving: f64,
    /// Accuracy of the accurate baseline on the validation subset.
    pub baseline_accuracy: f64,
    /// Accuracy forecast by the noise-predicted backend (every
    /// operation carrying its component's `(NA, NM)`).
    pub predicted_accuracy: f64,
    /// Ground-truth accuracy on the quantized integer datapath running
    /// the selected components, when a measured backend was supplied.
    pub measured_accuracy: Option<f64>,
}

impl ApproxDesign {
    /// Noise-predicted accuracy drop of the design, in percentage
    /// points.
    pub fn predicted_drop_pp(&self) -> f64 {
        (self.baseline_accuracy - self.predicted_accuracy) * 100.0
    }

    /// Measured accuracy drop of the design, in percentage points, when
    /// the design was re-scored on a measured backend.
    pub fn measured_drop_pp(&self) -> Option<f64> {
        self.measured_accuracy
            .map(|acc| (self.baseline_accuracy - acc) * 100.0)
    }

    /// The design's executable per-site multiplier assignment.
    pub fn datapath_assignment(&self) -> DatapathAssignment {
        DatapathAssignment::from_design(self)
    }
}

/// Per-`(layer, group)` tolerable-NM table assembled from Steps 2–5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToleranceTable {
    /// `(layer, group, tolerable NM)` rows.
    pub rows: Vec<(String, Group, f64)>,
}

impl ToleranceTable {
    /// Builds the table: resilient groups use their group-level critical
    /// `NM` for every layer; non-resilient groups use their per-layer
    /// critical `NM` from Step 4/5.
    pub fn build(
        inventory_layers: &[(Group, Vec<String>)],
        marking: &GroupMarking,
        layer_markings: &[LayerMarking],
    ) -> Self {
        let mut rows = Vec::new();
        for (group, layers) in inventory_layers {
            let group_critical = marking.critical_nm(*group);
            let per_layer = layer_markings.iter().find(|m| m.group == *group);
            for layer in layers {
                let nm = match per_layer {
                    Some(m) => m
                        .entries
                        .iter()
                        .find(|(l, _, _)| l == layer)
                        .map(|(_, nm, _)| *nm)
                        .unwrap_or(group_critical),
                    None => group_critical,
                };
                rows.push((layer.clone(), *group, nm));
            }
        }
        ToleranceTable { rows }
    }
}

/// **Step 6** — selects, per `(layer, group)` operation, the cheapest
/// library component whose measured `NM` (and `|NA|`) fit the tolerable
/// noise, then validates the full design end to end: always through the
/// [`NoisePredicted`] backend (per-site injection of each component's
/// noise), and additionally through `measured` — the real quantized
/// datapath — when one is supplied, filling
/// [`ApproxDesign::measured_accuracy`].
///
/// # Panics
///
/// Panics if a supplied measured backend cannot evaluate the selected
/// design (model mismatch or sites the backend's lowering executes that
/// the design does not cover — both configuration errors).
pub fn select_components<M: CapsModel + Clone + Send + Sync, B: AccuracyBackend>(
    model: &M,
    validation: &Dataset,
    tolerances: &ToleranceTable,
    library: &MultiplierLibrary,
    dist: &InputDistribution,
    cfg: &SelectionConfig,
    measured: Option<&B>,
) -> ApproxDesign {
    // Characterize the library once.
    let characterized: Vec<(String, NoiseParams, f64, f64)> = library
        .characterize_all(dist, cfg.characterization_samples, cfg.seed)
        .into_iter()
        .map(|(e, np)| {
            (
                e.name().to_string(),
                np,
                e.cost().power_uw,
                e.cost().area_um2,
            )
        })
        .collect();
    let exact_power = library.exact().cost().power_uw;

    let mut assignments = Vec::new();
    for (layer, group, tolerable) in &tolerances.rows {
        let budget = tolerable * cfg.safety_factor;
        // Cheapest component fitting the budget; the exact component
        // always fits (NM = 0), so a choice always exists.
        let best = characterized
            .iter()
            .filter(|(_, np, _, _)| np.nm <= budget && np.na.abs() <= budget)
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .unwrap_or_else(|| {
                characterized
                    .iter()
                    .find(|(name, _, _, _)| name == "mul8u_1JFF")
                    // lint: allow(panic) — library construction always seeds the exact component
                    .expect("library contains the exact component")
            });
        assignments.push(Assignment {
            layer: layer.clone(),
            group: *group,
            tolerable_nm: budget,
            component: best.0.clone(),
            component_noise: (best.1.na, best.1.nm),
            power_uw: best.2,
            area_um2: best.3,
        });
    }
    let mean_power_saving = if assignments.is_empty() {
        0.0
    } else {
        assignments
            .iter()
            .map(|a| 1.0 - a.power_uw / exact_power)
            .sum::<f64>()
            / assignments.len() as f64
    };

    // Validate through the backend trait: the selected design as an
    // executable per-site assignment, forecast by the noise model and —
    // when a measured backend is supplied — re-scored on the real
    // quantized datapath.
    let datapath = DatapathAssignment::from_assignments(&assignments);
    let mut predictor = NoisePredicted::new(cfg.seed ^ 0x5eed);
    for (name, np, _, _) in &characterized {
        predictor = predictor.with_component(name.clone(), np.nm, np.na);
    }
    let mut validator = model.clone();
    let baseline_accuracy = evaluate(
        &mut validator,
        validation,
        &mut redcane_capsnet::NoInjection,
    );
    let predicted_accuracy = predictor
        .evaluate(model, validation, &datapath)
        // lint: allow(panic) — selection only draws from the characterized table
        .expect("every selected component is characterized");
    let measured_accuracy = measured.map(|backend| {
        backend
            .evaluate(model, validation, &datapath)
            // lint: allow(panic) — fail-fast: a backend scoring failure invalidates the whole selection sweep
            .unwrap_or_else(|e| panic!("measured backend cannot score the design: {e}"))
    });

    ApproxDesign {
        model_name: validator.name(),
        assignments,
        mean_power_saving,
        baseline_accuracy,
        predicted_accuracy,
        measured_accuracy,
    }
}

/// Groups the inventory's layers for [`ToleranceTable::build`].
pub fn inventory_layers(inventory: &crate::groups::GroupInventory) -> Vec<(Group, Vec<String>)> {
    Group::all()
        .into_iter()
        .map(|g| (g, inventory.group_layers(g)))
        .collect()
}

/// The op kinds the paper approximates with multiplier errors.
pub fn approximable_kinds() -> [OpKind; 4] {
    OpKind::injectable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Curve, SweepPoint};

    fn fake_sweep() -> GroupSweep {
        let mk_curve = |group: Group, drops: [f64; 3]| Curve {
            target: group,
            points: vec![
                SweepPoint {
                    nm: 0.5,
                    accuracy: 0.9 - drops[0] / 100.0,
                    drop_pp: drops[0],
                },
                SweepPoint {
                    nm: 0.05,
                    accuracy: 0.9 - drops[1] / 100.0,
                    drop_pp: drops[1],
                },
                SweepPoint {
                    nm: 0.001,
                    accuracy: 0.9 - drops[2] / 100.0,
                    drop_pp: drops[2],
                },
            ],
        };
        GroupSweep {
            model_name: "test".into(),
            dataset_name: "test".into(),
            baseline_accuracy: 0.9,
            curves: vec![
                mk_curve(Group::MacOutputs, [70.0, 10.0, 0.2]),
                mk_curve(Group::Activations, [60.0, 8.0, 0.1]),
                mk_curve(Group::Softmax, [0.5, 0.0, 0.0]),
                mk_curve(Group::LogitsUpdate, [2.0, 0.3, 0.0]),
            ],
        }
    }

    #[test]
    fn marking_identifies_routing_groups_as_resilient() {
        let marking = mark_groups(&fake_sweep(), &SelectionConfig::default());
        let non_res = marking.non_resilient();
        assert!(non_res.contains(&Group::MacOutputs));
        assert!(non_res.contains(&Group::Activations));
        assert!(!non_res.contains(&Group::Softmax));
        assert!(!non_res.contains(&Group::LogitsUpdate));
        assert_eq!(marking.critical_nm(Group::Softmax), 0.5);
    }

    #[test]
    fn layer_marking_ranks_layers() {
        let sweep = LayerSweep {
            model_name: "m".into(),
            group: Group::MacOutputs,
            baseline_accuracy: 0.9,
            curves: vec![
                Curve {
                    target: "Conv1".to_string(),
                    points: vec![SweepPoint {
                        nm: 0.05,
                        accuracy: 0.3,
                        drop_pp: 60.0,
                    }],
                },
                Curve {
                    target: "Caps3D".to_string(),
                    points: vec![SweepPoint {
                        nm: 0.05,
                        accuracy: 0.895,
                        drop_pp: 0.5,
                    }],
                },
            ],
        };
        let marking = mark_layers(&sweep, &SelectionConfig::default());
        assert_eq!(marking.entries[0].1, 0.0); // Conv1 fails even at 0.05
        assert!(marking.entries[1].2); // Caps3D resilient
    }

    #[test]
    fn tolerance_table_prefers_layer_granularity() {
        let marking = mark_groups(&fake_sweep(), &SelectionConfig::default());
        let layer_markings = vec![LayerMarking {
            group: Group::MacOutputs,
            entries: vec![
                ("Conv1".to_string(), 0.002, false),
                ("Caps3D".to_string(), 0.05, true),
            ],
        }];
        let layers = vec![
            (
                Group::MacOutputs,
                vec!["Conv1".to_string(), "Caps3D".to_string()],
            ),
            (Group::Softmax, vec!["ClassCaps".to_string()]),
        ];
        let table = ToleranceTable::build(&layers, &marking, &layer_markings);
        let find = |layer: &str, g: Group| {
            table
                .rows
                .iter()
                .find(|(l, gg, _)| l == layer && *gg == g)
                .map(|(_, _, nm)| *nm)
                .unwrap()
        };
        assert_eq!(find("Conv1", Group::MacOutputs), 0.002);
        assert_eq!(find("Caps3D", Group::MacOutputs), 0.05);
        assert_eq!(find("ClassCaps", Group::Softmax), 0.5);
    }

    #[test]
    fn selection_puts_cheaper_components_on_tolerant_ops() {
        use redcane_capsnet::{CapsNet, CapsNetConfig};
        use redcane_datasets::{generate, Benchmark, GenerateConfig};
        use redcane_tensor::TensorRng;

        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 1,
                test: 20,
                seed: 9,
            },
        );
        let mut rng = TensorRng::from_seed(220);
        let model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let table = ToleranceTable {
            rows: vec![
                ("Conv1".to_string(), Group::MacOutputs, 0.0002),
                ("ClassCaps".to_string(), Group::Softmax, 0.5),
            ],
        };
        let lib = MultiplierLibrary::evo_approx_like();
        let cfg = SelectionConfig {
            characterization_samples: 3000,
            ..Default::default()
        };
        let design = select_components(
            &model,
            &pair.test,
            &table,
            &lib,
            &InputDistribution::Uniform,
            &cfg,
            None::<&NoisePredicted>,
        );
        assert_eq!(design.assignments.len(), 2);
        let conv = &design.assignments[0];
        let softmax = &design.assignments[1];
        assert!(
            softmax.power_uw < conv.power_uw,
            "tolerant op gets cheaper component: {} ({}) vs {} ({})",
            softmax.component,
            softmax.power_uw,
            conv.component,
            conv.power_uw
        );
        assert!(design.mean_power_saving > 0.0);
        assert!(design.predicted_accuracy >= 0.0);
        assert!(
            design.measured_accuracy.is_none() && design.measured_drop_pp().is_none(),
            "no measured backend was supplied"
        );
        // The design round-trips into an executable assignment covering
        // its layers' site keys.
        let dpa = design.datapath_assignment();
        assert_eq!(
            dpa.component_for("Conv1", OpKind::MacOutput, false),
            Some(design.assignments[0].component.as_str())
        );
        assert_eq!(
            dpa.component_for("ClassCaps", OpKind::Softmax, true),
            Some(design.assignments[1].component.as_str())
        );
    }
}
