//! End-to-end store tests against real models: round trips for both
//! architectures, loud rejection of damaged entries, and the retrain
//! fallback of `load_or_train`.

use std::fs;
use std::path::PathBuf;

use redcane_artifacts::{
    fingerprint, load_or_train, ArtifactError, ArtifactKey, ArtifactPayload, ArtifactStore,
    ComponentNoise, FaultChar, Provenance, RangeEntry, STORE_SCHEMA_VERSION,
};
use redcane_capsnet::{
    CapsModel, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig, NoInjection, OpKind,
};
use redcane_fxp::QuantParams;
use redcane_tensor::TensorRng;

/// Fresh per-test store directory under the system temp dir.
fn scratch_store(tag: &str) -> ArtifactStore {
    let dir = std::env::temp_dir().join(format!(
        "redcane-artifacts-test-{}-{}",
        tag,
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    ArtifactStore::new(dir)
}

fn sample_payload() -> ArtifactPayload {
    ArtifactPayload {
        epoch_losses: vec![0.8, 0.35, 0.21],
        train_accuracy: 0.9125,
        ranges: vec![
            RangeEntry {
                layer: "Conv1".into(),
                kind: OpKind::MacOutput,
                in_routing: false,
                params: QuantParams::from_range(-2.0, 3.0, 8).unwrap(),
            },
            RangeEntry {
                layer: "ClassCaps".into(),
                kind: OpKind::LogitsUpdate,
                in_routing: true,
                params: QuantParams::from_range(-0.5, 0.5, 8).unwrap(),
            },
        ],
        noise_table: vec![
            ComponentNoise {
                component: "mul8u_1JFF".into(),
                samples: 2000,
                na: 0.0,
                nm: 0.0,
            },
            ComponentNoise {
                component: "mul8u_NGR".into(),
                samples: 2000,
                na: -2.5e-4,
                nm: 1.5e-3,
            },
        ],
        activation_codes: (0..=255).collect(),
        fault_table: vec![FaultChar {
            spec: "multiplier:dead".into(),
            samples: 1000,
            mean_err: -0.12,
            rms_err: 0.2,
        }],
    }
}

fn capsnet_pair() -> (CapsNet, CapsNet) {
    let cfg = CapsNetConfig::small(1, 16);
    (
        CapsNet::new(&cfg, &mut TensorRng::from_seed(271)),
        CapsNet::new(&cfg, &mut TensorRng::from_seed(999)),
    )
}

fn deepcaps_pair() -> (DeepCaps, DeepCaps) {
    let cfg = DeepCapsConfig::small(1, 16);
    (
        DeepCaps::new(&cfg, &mut TensorRng::from_seed(272)),
        DeepCaps::new(&cfg, &mut TensorRng::from_seed(998)),
    )
}

fn assert_same_behavior(a: &mut dyn CapsModel, b: &mut dyn CapsModel, seed: u64) {
    let x = TensorRng::from_seed(seed).uniform(&[1, 16, 16], 0.0, 1.0);
    assert_eq!(
        a.forward(&x, &mut NoInjection),
        b.forward(&x, &mut NoInjection)
    );
}

#[test]
fn round_trips_capsnet_weights_ranges_and_tables() {
    let store = scratch_store("rt-capsnet");
    let key = ArtifactKey::new("capsnet", "mnist-like", 7, 4, fingerprint("rt"));
    let (mut trained, mut restored) = capsnet_pair();
    let payload = sample_payload();
    store.save(&key, &mut trained, &payload).unwrap();
    let loaded = store.load(&key, &mut restored).unwrap();
    assert_eq!(loaded, payload);
    assert_same_behavior(&mut trained, &mut restored, 31);
}

#[test]
fn round_trips_deepcaps_weights_ranges_and_tables() {
    let store = scratch_store("rt-deepcaps");
    let key = ArtifactKey::new("deepcaps", "cifar10-like", 7, 4, fingerprint("rt"));
    let (mut trained, mut restored) = deepcaps_pair();
    let payload = sample_payload();
    store.save(&key, &mut trained, &payload).unwrap();
    let loaded = store.load(&key, &mut restored).unwrap();
    assert_eq!(loaded, payload);
    assert_same_behavior(&mut trained, &mut restored, 32);
}

#[test]
fn missing_entry_is_a_plain_io_miss() {
    let store = scratch_store("miss");
    let key = ArtifactKey::new("capsnet", "mnist-like", 1, 1, fingerprint("miss"));
    let (mut model, _) = capsnet_pair();
    match store.load(&key, &mut model) {
        Err(ArtifactError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("expected NotFound, got {other:?}"),
    }
}

#[test]
fn truncated_entry_is_rejected_with_named_error() {
    let store = scratch_store("trunc");
    let key = ArtifactKey::new("capsnet", "mnist-like", 2, 3, fingerprint("trunc"));
    let (mut trained, mut restored) = capsnet_pair();
    let path = store.save(&key, &mut trained, &sample_payload()).unwrap();
    let full = fs::read(&path).unwrap();
    fs::write(&path, &full[..full.len() / 2]).unwrap();
    let err = store.load(&key, &mut restored).unwrap_err();
    assert!(
        matches!(
            err,
            ArtifactError::Truncated { .. } | ArtifactError::ChecksumMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn bit_flipped_weights_are_rejected_with_named_error() {
    let store = scratch_store("flip");
    let key = ArtifactKey::new("capsnet", "mnist-like", 3, 3, fingerprint("flip"));
    let (mut trained, mut restored) = capsnet_pair();
    let path = store.save(&key, &mut trained, &sample_payload()).unwrap();
    let mut data = fs::read(&path).unwrap();
    // Flip one bit in the middle of the (large) weight section.
    let mid = data.len() / 2;
    data[mid] ^= 0x01;
    fs::write(&path, &data).unwrap();
    let err = store.load(&key, &mut restored).unwrap_err();
    assert!(
        matches!(err, ArtifactError::ChecksumMismatch { .. }),
        "{err}"
    );
}

#[test]
fn wrong_schema_version_is_rejected_with_named_error() {
    let store = scratch_store("schema");
    let key = ArtifactKey::new("capsnet", "mnist-like", 4, 3, fingerprint("schema"));
    let (mut trained, mut restored) = capsnet_pair();
    let path = store.save(&key, &mut trained, &sample_payload()).unwrap();
    let mut data = fs::read(&path).unwrap();
    // Schema version sits right after the 4-byte magic.
    data[4..8].copy_from_slice(&(STORE_SCHEMA_VERSION + 9).to_le_bytes());
    fs::write(&path, &data).unwrap();
    let err = store.load(&key, &mut restored).unwrap_err();
    assert!(
        matches!(err, ArtifactError::SchemaVersionMismatch { found, .. }
            if found == STORE_SCHEMA_VERSION + 9),
        "{err}"
    );
}

#[test]
fn entry_under_wrong_key_is_rejected() {
    let store = scratch_store("wrong-key");
    let key = ArtifactKey::new("capsnet", "mnist-like", 5, 3, fingerprint("a"));
    let (mut trained, mut restored) = capsnet_pair();
    let path = store.save(&key, &mut trained, &sample_payload()).unwrap();
    // Simulate a file renamed under a different key's name.
    let mut other = key.clone();
    other.fingerprint = fingerprint("b");
    fs::copy(&path, store.path_for(&other)).unwrap();
    let err = store.load(&other, &mut restored).unwrap_err();
    assert!(
        matches!(
            err,
            ArtifactError::KeyMismatch {
                field: "fingerprint",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn wrong_architecture_weights_are_rejected() {
    let store = scratch_store("wrong-arch");
    let key = ArtifactKey::new("deepcaps", "mnist-like", 6, 3, fingerprint("arch"));
    // Save a CapsNet under a key a DeepCaps consumer will look up: the
    // header matches but the weight codec must refuse the shapes.
    let (mut capsnet, _) = capsnet_pair();
    store.save(&key, &mut capsnet, &sample_payload()).unwrap();
    let (mut deepcaps, _) = deepcaps_pair();
    let err = store.load(&key, &mut deepcaps).unwrap_err();
    assert!(matches!(err, ArtifactError::Corrupt { .. }), "{err}");
}

#[test]
fn load_or_train_trains_once_then_restores() {
    let store = scratch_store("lot");
    let key = ArtifactKey::new("capsnet", "mnist-like", 8, 2, fingerprint("lot"));
    let (mut first, mut second) = capsnet_pair();

    let mut produced = 0;
    let (payload, prov) = load_or_train(Some(&store), &key, &mut first, |_m| {
        produced += 1;
        sample_payload()
    });
    assert_eq!((produced, prov), (1, Provenance::Trained));
    assert_eq!(payload, sample_payload());

    let (payload2, prov2) = load_or_train(Some(&store), &key, &mut second, |_m| {
        panic!("cache hit must not retrain")
    });
    assert_eq!(prov2, Provenance::Restored);
    assert_eq!(payload2, payload);
    assert_same_behavior(&mut first, &mut second, 33);
}

#[test]
fn load_or_train_retrains_and_heals_a_corrupt_entry() {
    let store = scratch_store("heal");
    let key = ArtifactKey::new("capsnet", "mnist-like", 9, 2, fingerprint("heal"));
    let (mut first, mut second) = capsnet_pair();
    let path = store.save(&key, &mut first, &sample_payload()).unwrap();
    let mut data = fs::read(&path).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0x80;
    fs::write(&path, &data).unwrap();

    // The corrupt entry must fall back to the producer…
    let (_, prov) = load_or_train(Some(&store), &key, &mut first, |_m| sample_payload());
    assert_eq!(prov, Provenance::Trained);
    // …and overwrite the store with a valid entry.
    let (_, prov2) = load_or_train(Some(&store), &key, &mut second, |_m| {
        panic!("healed entry must restore")
    });
    assert_eq!(prov2, Provenance::Restored);
}

#[test]
fn no_store_always_trains_and_writes_nothing() {
    let dir: PathBuf = std::env::temp_dir().join("redcane-artifacts-test-never-created");
    let _ = fs::remove_dir_all(&dir);
    let key = ArtifactKey::new("capsnet", "mnist-like", 10, 2, fingerprint("none"));
    let (mut model, _) = capsnet_pair();
    let mut produced = 0;
    for _ in 0..2 {
        let (_, prov) = load_or_train(None, &key, &mut model, |_m| {
            produced += 1;
            ArtifactPayload::default()
        });
        assert_eq!(prov, Provenance::Trained);
    }
    assert_eq!(produced, 2);
    assert!(!dir.exists());
}

#[test]
fn resolve_dir_precedence() {
    assert_eq!(ArtifactStore::resolve_dir(Some("x"), true), None);
    assert_eq!(ArtifactStore::resolve_dir(None, true), None);
    assert_eq!(
        ArtifactStore::resolve_dir(Some("/tmp/explicit"), false),
        Some(PathBuf::from("/tmp/explicit"))
    );
    // Env handling is covered implicitly; without the env var set the
    // default directory is used.
    if std::env::var("REDCANE_ARTIFACTS").is_err() {
        assert_eq!(
            ArtifactStore::resolve_dir(None, false),
            Some(PathBuf::from(".redcane-artifacts"))
        );
    }
}
