//! The two evaluated architectures: CapsNet (Sabour et al.) and DeepCaps
//! (Rajasegaran et al.), behind the common [`CapsModel`] interface.

use redcane_nn::layers::{Conv2d, Relu};
use redcane_nn::{Layer, Param};
use redcane_tensor::{Tensor, TensorRng};

use crate::census::{conv_ops, fc_votes_ops, routing_ops, squash_ops, LayerCensus, OpCount};
use crate::config::{CapsNetConfig, DeepCapsConfig};
use crate::inject::{Injector, NoInjection, OpKind, OpSite};
use crate::layers::{ClassCaps, ConvCaps2d, ConvCaps3d};
use crate::squash::{caps_lengths, caps_lengths_backward, squash_caps, squash_caps_backward};

/// A trainable capsule classifier with injection hooks.
///
/// `forward` returns the class-capsule **lengths** (existence
/// probabilities) as a rank-1 tensor; `backward_from_lengths` propagates a
/// gradient on those lengths back through the whole network, accumulating
/// parameter gradients.
pub trait CapsModel {
    /// Architecture + config display name.
    fn name(&self) -> String;

    /// The concrete model behind the trait object.
    ///
    /// Downstream crates dispatch on this to lower a `&dyn CapsModel`
    /// onto alternative datapaths (e.g. `redcane-qdp`'s quantized
    /// lowering) without the capsnet crate depending on them.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Full inference pass; every classified operation calls `injector`.
    fn forward(&mut self, x: &Tensor, injector: &mut dyn Injector) -> Tensor;

    /// Backpropagates `d_lengths` (shape `[num_classes]`).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    fn backward_from_lengths(&mut self, d_lengths: &Tensor);

    /// All trainable parameters, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Layer names in network order (the granularity of the paper's
    /// layer-wise analysis, Fig. 10).
    fn layer_names(&self) -> Vec<String>;

    /// Per-layer operation counts for one inference (Table I input).
    fn op_census(&self) -> Vec<LayerCensus>;

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total trainable scalars.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Argmax class prediction under an injector.
    fn predict_with(&mut self, x: &Tensor, injector: &mut dyn Injector) -> usize {
        self.forward(x, injector)
            .argmax()
            // lint: allow(panic) — capsule count is structurally nonzero, so lengths are non-empty
            .expect("non-empty class lengths")
    }

    /// Argmax class prediction of the accurate network.
    fn predict(&mut self, x: &Tensor) -> usize {
        self.predict_with(x, &mut NoInjection)
    }
}

/// Reorders a `[C, D, H, W]` capsule tensor into `[C*H*W, D]` unit form
/// (one row per capsule) for fully-connected capsule layers.
///
/// Public because quantized/alternative datapaths must reproduce the
/// exact same capsule→unit ordering the float models use.
///
/// # Panics
///
/// Panics unless `t` is rank 4.
pub fn caps_to_units(t: &Tensor) -> Tensor {
    assert_eq!(t.ndim(), 4);
    let (c, d, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    let src = t.data();
    let mut out = vec![0.0f32; c * d * h * w];
    for ci in 0..c {
        for di in 0..d {
            for y in 0..h {
                for x in 0..w {
                    let unit = (ci * h + y) * w + x;
                    out[unit * d + di] = src[((ci * d + di) * h + y) * w + x];
                }
            }
        }
    }
    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
    Tensor::from_vec(out, &[c * h * w, d]).expect("sized")
}

/// Inverse of [`caps_to_units`] for gradients.
fn units_to_caps(g: &Tensor, c: usize, d: usize, h: usize, w: usize) -> Tensor {
    assert_eq!(g.shape(), [c * h * w, d]);
    let src = g.data();
    let mut out = vec![0.0f32; c * d * h * w];
    for ci in 0..c {
        for di in 0..d {
            for y in 0..h {
                for x in 0..w {
                    let unit = (ci * h + y) * w + x;
                    out[((ci * d + di) * h + y) * w + x] = src[unit * d + di];
                }
            }
        }
    }
    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
    Tensor::from_vec(out, &[c, d, h, w]).expect("sized")
}

// =====================================================================
// CapsNet (Sabour et al., NIPS 2017)
// =====================================================================

/// The original CapsNet: Conv stem → PrimaryCaps → ClassCaps (routing).
#[derive(Debug, Clone)]
pub struct CapsNet {
    cfg: CapsNetConfig,
    conv1: Conv2d,
    relu: Relu,
    primary: ConvCaps2d,
    class_caps: ClassCaps,
    primary_hw: usize,
    v_cache: Option<Tensor>,
}

impl CapsNet {
    /// Builds a CapsNet with freshly initialized weights.
    pub fn new(cfg: &CapsNetConfig, rng: &mut TensorRng) -> Self {
        let primary_hw = cfg.primary_out_hw();
        let conv1 = Conv2d::new(
            cfg.input_channels,
            cfg.conv1_filters,
            cfg.conv1_kernel,
            1,
            0,
            rng,
        );
        let primary = ConvCaps2d::new(
            1,
            "PrimaryCaps",
            cfg.conv1_filters,
            1,
            cfg.primary_ctypes,
            cfg.primary_dim,
            cfg.primary_kernel,
            cfg.primary_stride,
            0,
            true,
            rng,
        );
        let class_caps = ClassCaps::new(
            2,
            "ClassCaps",
            cfg.primary_caps_total(),
            cfg.class_caps,
            cfg.primary_dim,
            cfg.class_dim,
            cfg.routing_iters,
            rng,
        );
        CapsNet {
            cfg: cfg.clone(),
            conv1,
            relu: Relu::new(),
            primary,
            class_caps,
            primary_hw,
            v_cache: None,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &CapsNetConfig {
        &self.cfg
    }

    /// Direct access to the class-capsule layer (weight export).
    pub fn class_caps(&self) -> &ClassCaps {
        &self.class_caps
    }

    /// Direct access to the stem convolution (weight export, e.g. for
    /// building a quantized datapath from the trained weights).
    pub fn conv1(&self) -> &Conv2d {
        &self.conv1
    }

    /// Direct access to the primary conv-caps layer (weight export).
    pub fn primary(&self) -> &ConvCaps2d {
        &self.primary
    }
}

impl CapsModel for CapsNet {
    fn name(&self) -> String {
        format!(
            "CapsNet[{}x{}x{}]",
            self.cfg.input_channels, self.cfg.input_hw, self.cfg.input_hw
        )
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn num_classes(&self) -> usize {
        self.cfg.class_caps
    }

    fn forward(&mut self, x: &Tensor, injector: &mut dyn Injector) -> Tensor {
        assert_eq!(
            x.shape(),
            [
                self.cfg.input_channels,
                self.cfg.input_hw,
                self.cfg.input_hw
            ],
            "CapsNet input"
        );
        if injector.observes_inputs() {
            let mut copy = x.clone();
            injector.inject(&OpSite::new(0, "Conv1", OpKind::MacInput), &mut copy);
        }
        let mut c = self.conv1.forward(x);
        injector.inject(&OpSite::new(0, "Conv1", OpKind::MacOutput), &mut c);
        let mut a = self.relu.forward(&c);
        injector.inject(&OpSite::new(0, "Conv1", OpKind::Activation), &mut a);
        let (h1, w1) = (a.shape()[1], a.shape()[2]);
        let caps_in = a
            .into_reshaped(&[self.cfg.conv1_filters, 1, h1, w1])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("stem to caps");
        let prim = self.primary.forward(&caps_in, injector);
        let u = caps_to_units(&prim);
        let v = self.class_caps.forward(&u, injector);
        let v3 = v
            .reshape(&[self.cfg.class_caps, self.cfg.class_dim, 1])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("caps form");
        let lengths = caps_lengths(&v3)
            .into_reshaped(&[self.cfg.class_caps])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("drop P");
        self.v_cache = Some(v);
        lengths
    }

    fn backward_from_lengths(&mut self, d_lengths: &Tensor) {
        // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
        let v = self.v_cache.take().expect("backward before forward");
        let v3 = v
            .reshape(&[self.cfg.class_caps, self.cfg.class_dim, 1])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("caps form");
        let dl = d_lengths
            .reshape(&[self.cfg.class_caps, 1])
            // lint: allow(panic) — shape invariant: the gradient was built as [C, P] right here
            .expect("[C, P] gradient");
        let dv = caps_lengths_backward(&v3, &dl)
            .into_reshaped(&[self.cfg.class_caps, self.cfg.class_dim])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("drop P");
        let du = self.class_caps.backward(&dv);
        let hw = self.primary_hw;
        let dprim = units_to_caps(&du, self.cfg.primary_ctypes, self.cfg.primary_dim, hw, hw);
        let dstem = self.primary.backward(&dprim);
        let h1 = self.cfg.conv1_out_hw();
        let dstem = dstem
            .into_reshaped(&[self.cfg.conv1_filters, h1, h1])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("caps to stem");
        let dc = self.relu.backward(&dstem);
        let _ = self.conv1.backward(&dc);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.conv1.params_mut();
        out.extend(self.primary.params_mut());
        out.extend(self.class_caps.params_mut());
        out
    }

    fn layer_names(&self) -> Vec<String> {
        vec![
            "Conv1".to_string(),
            "PrimaryCaps".to_string(),
            "ClassCaps".to_string(),
        ]
    }

    fn op_census(&self) -> Vec<LayerCensus> {
        let cfg = &self.cfg;
        let h1 = cfg.conv1_out_hw();
        let hp = cfg.primary_out_hw();
        let mut out = Vec::new();
        out.push(LayerCensus {
            name: "Conv1".into(),
            ops: conv_ops(
                cfg.input_channels,
                cfg.conv1_filters,
                cfg.conv1_kernel,
                h1,
                h1,
            ),
        });
        let primary_conv = conv_ops(
            cfg.conv1_filters,
            cfg.primary_ctypes * cfg.primary_dim,
            cfg.primary_kernel,
            hp,
            hp,
        );
        let primary_squash = squash_ops(cfg.primary_ctypes, cfg.primary_dim, hp * hp);
        out.push(LayerCensus {
            name: "PrimaryCaps".into(),
            ops: primary_conv + primary_squash,
        });
        let i = cfg.primary_caps_total();
        let votes = fc_votes_ops(i, cfg.class_caps, cfg.class_dim, cfg.primary_dim);
        let routing = routing_ops(i, cfg.class_caps, cfg.class_dim, 1, cfg.routing_iters);
        out.push(LayerCensus {
            name: "ClassCaps".into(),
            ops: votes + routing,
        });
        out
    }
}

// =====================================================================
// DeepCaps (Rajasegaran et al., CVPR 2019)
// =====================================================================

/// One residual capsule cell: a stride-2 lead conv-caps, two more
/// conv-caps on the main path, a skip conv-caps, and a squash at the join.
#[derive(Debug, Clone)]
pub struct CapsCell {
    lead: ConvCaps2d,
    mid: ConvCaps2d,
    tail: ConvCaps2d,
    skip: ConvCaps2d,
    /// Pre-squash sum cached for backward.
    sum_cache: Option<Tensor>,
    out_shape: Option<[usize; 4]>,
}

impl CapsCell {
    /// The stride-`s` lead conv-caps entering the cell (squashing).
    pub fn lead(&self) -> &ConvCaps2d {
        &self.lead
    }

    /// The second main-path conv-caps (squashing).
    pub fn mid(&self) -> &ConvCaps2d {
        &self.mid
    }

    /// The third main-path conv-caps (pre-activation; the squash
    /// happens at the residual join).
    pub fn tail(&self) -> &ConvCaps2d {
        &self.tail
    }

    /// The skip-path conv-caps (pre-activation).
    pub fn skip(&self) -> &ConvCaps2d {
        &self.skip
    }

    fn forward(&mut self, x: &Tensor, injector: &mut dyn Injector) -> Tensor {
        let a = self.lead.forward(x, injector);
        let b = self.mid.forward(&a, injector);
        let t_pre = self.tail.forward(&b, injector);
        let s_pre = self.skip.forward(&a, injector);
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let sum = t_pre.add(&s_pre).expect("residual shapes match");
        let shape = [
            sum.shape()[0],
            sum.shape()[1],
            sum.shape()[2],
            sum.shape()[3],
        ];
        let p = shape[2] * shape[3];
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let sum3 = sum.reshape(&[shape[0], shape[1], p]).expect("caps fold");
        let mut v = squash_caps(&sum3);
        injector.inject(
            &OpSite::new(
                self.tail.layer_index(),
                self.tail.name().to_string(),
                OpKind::Activation,
            ),
            &mut v,
        );
        self.sum_cache = Some(sum3);
        self.out_shape = Some(shape);
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        v.into_reshaped(&shape).expect("spatial unfold")
    }

    fn backward(&mut self, d_out: &Tensor) -> Tensor {
        // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
        let sum3 = self.sum_cache.take().expect("cell backward before forward");
        // lint: allow(panic) — API contract: set together with sum_cache in forward()
        let shape = self.out_shape.expect("cached with sum");
        let p = shape[2] * shape[3];
        let dv = d_out
            .reshape(&[shape[0], shape[1], p])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("gradient fold");
        let dsum = squash_caps_backward(&sum3, &dv)
            .into_reshaped(&shape)
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("spatial unfold");
        let db = self.tail.backward(&dsum);
        let da_skip = self.skip.backward(&dsum);
        let da_main = self.mid.backward(&db);
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let da = da_main.add(&da_skip).expect("shapes match");
        self.lead.backward(&da)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.lead.params_mut();
        out.extend(self.mid.params_mut());
        out.extend(self.tail.params_mut());
        out.extend(self.skip.params_mut());
        out
    }
}

/// DeepCaps: conv-caps stem, three residual capsule cells, a final cell
/// whose third unit is the routing `Caps3D`, and a ClassCaps head fed by
/// the concatenated Caps3D + skip capsules (Fig. 2 of the ReD-CaNe paper).
#[derive(Debug, Clone)]
pub struct DeepCaps {
    cfg: DeepCapsConfig,
    stem: ConvCaps2d,
    cells: Vec<CapsCell>,
    last_lead: ConvCaps2d,
    last_mid: ConvCaps2d,
    last_skip: ConvCaps2d,
    caps3d: ConvCaps3d,
    class_caps: ClassCaps,
    final_hw: usize,
    v_cache: Option<Tensor>,
    caps3d_units: usize,
}

impl DeepCaps {
    /// Builds a DeepCaps with freshly initialized weights.
    pub fn new(cfg: &DeepCapsConfig, rng: &mut TensorRng) -> Self {
        let (sc, sd) = cfg.stem;
        let stem = ConvCaps2d::new(
            0,
            "Conv2D",
            cfg.input_channels,
            1,
            sc,
            sd,
            3,
            1,
            1,
            true,
            rng,
        );
        let mut cells = Vec::new();
        let mut in_caps = (sc, sd);
        for cell_idx in 0..3 {
            let (c, d) = cfg.cells[cell_idx];
            let base = 1 + cell_idx * 4;
            let name = |off: usize| format!("Caps2D{}", base + off);
            let lead = ConvCaps2d::new(
                base,
                name(0),
                in_caps.0,
                in_caps.1,
                c,
                d,
                3,
                cfg.cell_strides[cell_idx],
                1,
                true,
                rng,
            );
            let mid = ConvCaps2d::new(base + 1, name(1), c, d, c, d, 3, 1, 1, true, rng);
            let tail = ConvCaps2d::new(base + 2, name(2), c, d, c, d, 3, 1, 1, false, rng);
            let skip = ConvCaps2d::new(base + 3, name(3), c, d, c, d, 3, 1, 1, false, rng);
            cells.push(CapsCell {
                lead,
                mid,
                tail,
                skip,
                sum_cache: None,
                out_shape: None,
            });
            in_caps = (c, d);
        }
        let (c4, d4) = cfg.cells[3];
        let last_lead = ConvCaps2d::new(
            13,
            "Caps2D13",
            in_caps.0,
            in_caps.1,
            c4,
            d4,
            3,
            cfg.cell_strides[3],
            1,
            true,
            rng,
        );
        let last_mid = ConvCaps2d::new(14, "Caps2D14", c4, d4, c4, d4, 3, 1, 1, true, rng);
        let last_skip = ConvCaps2d::new(15, "Caps2D15", c4, d4, c4, d4, 3, 1, 1, true, rng);
        let caps3d = ConvCaps3d::new(
            16,
            "Caps3D",
            c4,
            d4,
            c4,
            d4,
            3,
            1,
            1,
            cfg.routing_iters,
            rng,
        );
        let final_hw = cfg.final_hw();
        let caps3d_units = c4 * final_hw * final_hw;
        let total_units = 2 * caps3d_units; // Caps3D + skip capsules
        let class_caps = ClassCaps::new(
            17,
            "ClassCaps",
            total_units,
            cfg.class_caps,
            d4,
            cfg.class_dim,
            cfg.routing_iters,
            rng,
        );
        DeepCaps {
            cfg: cfg.clone(),
            stem,
            cells,
            last_lead,
            last_mid,
            last_skip,
            caps3d,
            class_caps,
            final_hw,
            v_cache: None,
            caps3d_units,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &DeepCapsConfig {
        &self.cfg
    }

    /// The stem conv-caps layer (weight export).
    pub fn stem(&self) -> &ConvCaps2d {
        &self.stem
    }

    /// The three residual capsule cells, in network order.
    pub fn cells(&self) -> &[CapsCell] {
        &self.cells
    }

    /// The final cell's lead conv-caps.
    pub fn last_lead(&self) -> &ConvCaps2d {
        &self.last_lead
    }

    /// The final cell's mid conv-caps.
    pub fn last_mid(&self) -> &ConvCaps2d {
        &self.last_mid
    }

    /// The final cell's skip conv-caps.
    pub fn last_skip(&self) -> &ConvCaps2d {
        &self.last_skip
    }

    /// The routing 3-D conv-caps unit.
    pub fn caps3d(&self) -> &ConvCaps3d {
        &self.caps3d
    }

    /// The class-capsule head (weight export).
    pub fn class_caps(&self) -> &ClassCaps {
        &self.class_caps
    }
}

impl CapsModel for DeepCaps {
    fn name(&self) -> String {
        format!(
            "DeepCaps[{}x{}x{}]",
            self.cfg.input_channels, self.cfg.input_hw, self.cfg.input_hw
        )
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn num_classes(&self) -> usize {
        self.cfg.class_caps
    }

    fn forward(&mut self, x: &Tensor, injector: &mut dyn Injector) -> Tensor {
        assert_eq!(
            x.shape(),
            [
                self.cfg.input_channels,
                self.cfg.input_hw,
                self.cfg.input_hw
            ],
            "DeepCaps input"
        );
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let caps_in = x
            .reshape(&[self.cfg.input_channels, 1, h, w])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("image to caps");
        let mut t = self.stem.forward(&caps_in, injector);
        for cell in &mut self.cells {
            t = cell.forward(&t, injector);
        }
        let a = self.last_lead.forward(&t, injector);
        let b = self.last_mid.forward(&a, injector);
        let c3 = self.caps3d.forward(&b, injector);
        let d = self.last_skip.forward(&a, injector);
        let u3 = caps_to_units(&c3);
        let us = caps_to_units(&d);
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let u = Tensor::concat(&[&u3, &us], 0).expect("unit concat");
        let v = self.class_caps.forward(&u, injector);
        let v3 = v
            .reshape(&[self.cfg.class_caps, self.cfg.class_dim, 1])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("caps form");
        let lengths = caps_lengths(&v3)
            .into_reshaped(&[self.cfg.class_caps])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("drop P");
        self.v_cache = Some(v);
        lengths
    }

    fn backward_from_lengths(&mut self, d_lengths: &Tensor) {
        // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
        let v = self.v_cache.take().expect("backward before forward");
        let v3 = v
            .reshape(&[self.cfg.class_caps, self.cfg.class_dim, 1])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("caps form");
        let dl = d_lengths
            .reshape(&[self.cfg.class_caps, 1])
            // lint: allow(panic) — shape invariant: the gradient was built as [C, P] right here
            .expect("[C, P] gradient");
        let dv = caps_lengths_backward(&v3, &dl)
            .into_reshaped(&[self.cfg.class_caps, self.cfg.class_dim])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("drop P");
        let du = self.class_caps.backward(&dv);
        let (c4, d4) = self.cfg.cells[3];
        let hw = self.final_hw;
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let du3 = du.slice_axis(0, 0, self.caps3d_units).expect("caps3d part");
        let dus = du
            .slice_axis(0, self.caps3d_units, 2 * self.caps3d_units)
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("skip part");
        let dc3 = units_to_caps(&du3, c4, d4, hw, hw);
        let dd = units_to_caps(&dus, c4, d4, hw, hw);
        let db = self.caps3d.backward(&dc3);
        let da_skip = self.last_skip.backward(&dd);
        let da_main = self.last_mid.backward(&db);
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let da = da_main.add(&da_skip).expect("shapes match");
        let mut dt = self.last_lead.backward(&da);
        for cell in self.cells.iter_mut().rev() {
            dt = cell.backward(&dt);
        }
        let _ = self.stem.backward(&dt);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.stem.params_mut();
        for cell in &mut self.cells {
            out.extend(cell.params_mut());
        }
        out.extend(self.last_lead.params_mut());
        out.extend(self.last_mid.params_mut());
        out.extend(self.last_skip.params_mut());
        out.extend(self.caps3d.params_mut());
        out.extend(self.class_caps.params_mut());
        out
    }

    fn layer_names(&self) -> Vec<String> {
        let mut names = vec!["Conv2D".to_string()];
        for i in 1..=15 {
            names.push(format!("Caps2D{i}"));
        }
        names.push("Caps3D".to_string());
        names.push("ClassCaps".to_string());
        names
    }

    fn op_census(&self) -> Vec<LayerCensus> {
        let cfg = &self.cfg;
        let mut out = Vec::new();
        let (sc, sd) = cfg.stem;
        let hw0 = cfg.input_hw;
        out.push(LayerCensus {
            name: "Conv2D".into(),
            ops: conv_ops(cfg.input_channels, sc * sd, 3, hw0, hw0) + squash_ops(sc, sd, hw0 * hw0),
        });
        let cell_hw = cfg.cell_input_hw();
        let mut in_ch = sc * sd;
        // The index addresses three parallel per-cell arrays
        // (`cells`, `cell_strides`, `cell_hw`), so a range loop is
        // clearer than zipping them.
        #[allow(clippy::needless_range_loop)]
        for cell_idx in 0..3 {
            let (c, d) = cfg.cells[cell_idx];
            let ch = c * d;
            let hw_out = cell_hw[cell_idx].div_ceil(cfg.cell_strides[cell_idx]);
            let base = 1 + cell_idx * 4;
            // lead (stride 2, squash)
            out.push(LayerCensus {
                name: format!("Caps2D{base}"),
                ops: conv_ops(in_ch, ch, 3, hw_out, hw_out) + squash_ops(c, d, hw_out * hw_out),
            });
            // mid (squash)
            out.push(LayerCensus {
                name: format!("Caps2D{}", base + 1),
                ops: conv_ops(ch, ch, 3, hw_out, hw_out) + squash_ops(c, d, hw_out * hw_out),
            });
            // tail (pre-activation; squash happens at the join, counted here)
            out.push(LayerCensus {
                name: format!("Caps2D{}", base + 2),
                ops: conv_ops(ch, ch, 3, hw_out, hw_out)
                    + squash_ops(c, d, hw_out * hw_out)
                    + OpCount {
                        add: (ch * hw_out * hw_out) as u64, // residual join
                        ..Default::default()
                    },
            });
            // skip
            out.push(LayerCensus {
                name: format!("Caps2D{}", base + 3),
                ops: conv_ops(ch, ch, 3, hw_out, hw_out),
            });
            in_ch = ch;
        }
        let (c4, d4) = cfg.cells[3];
        let ch4 = c4 * d4;
        let hw4 = cfg.final_hw();
        out.push(LayerCensus {
            name: "Caps2D13".into(),
            ops: conv_ops(in_ch, ch4, 3, hw4, hw4) + squash_ops(c4, d4, hw4 * hw4),
        });
        out.push(LayerCensus {
            name: "Caps2D14".into(),
            ops: conv_ops(ch4, ch4, 3, hw4, hw4) + squash_ops(c4, d4, hw4 * hw4),
        });
        out.push(LayerCensus {
            name: "Caps2D15".into(),
            ops: conv_ops(ch4, ch4, 3, hw4, hw4) + squash_ops(c4, d4, hw4 * hw4),
        });
        // Caps3D: per-type vote convs + routing over [I=c4, J=c4, D=d4, P].
        let p4 = hw4 * hw4;
        let caps3d_votes: OpCount = (0..c4).map(|_| conv_ops(d4, c4 * d4, 3, hw4, hw4)).sum();
        out.push(LayerCensus {
            name: "Caps3D".into(),
            ops: caps3d_votes + routing_ops(c4, c4, d4, p4, cfg.routing_iters),
        });
        let i_units = 2 * c4 * p4;
        out.push(LayerCensus {
            name: "ClassCaps".into(),
            ops: fc_votes_ops(i_units, cfg.class_caps, cfg.class_dim, d4)
                + routing_ops(i_units, cfg.class_caps, cfg.class_dim, 1, cfg.routing_iters),
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::RecordingInjector;

    #[test]
    fn capsnet_forward_shape_and_determinism() {
        let mut rng = TensorRng::from_seed(160);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let l1 = model.forward(&x, &mut NoInjection);
        let l2 = model.forward(&x, &mut NoInjection);
        assert_eq!(l1.shape(), &[10]);
        assert_eq!(l1, l2, "inference must be deterministic");
        assert!(l1.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn capsnet_sites_cover_all_groups_and_layers() {
        let mut rng = TensorRng::from_seed(161);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let _ = model.forward(&x, &mut rec);
        let sites = rec.distinct_sites();
        for kind in OpKind::injectable() {
            assert!(sites.iter().any(|s| s.kind == kind), "missing {kind}");
        }
        for name in model.layer_names() {
            assert!(
                sites.iter().any(|s| s.layer_name == name),
                "no sites for layer {name}"
            );
        }
        // Softmax/logits-update only in the routing layer.
        assert!(sites
            .iter()
            .filter(|s| s.kind == OpKind::Softmax || s.kind == OpKind::LogitsUpdate)
            .all(|s| s.layer_name == "ClassCaps"));
    }

    #[test]
    fn capsnet_backward_accumulates_all_grads() {
        let mut rng = TensorRng::from_seed(162);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        model.zero_grad();
        let lengths = model.forward(&x, &mut NoInjection);
        let dl = Tensor::ones(lengths.shape());
        model.backward_from_lengths(&dl);
        for (i, p) in model.params_mut().into_iter().enumerate() {
            assert!(p.grad.sq_norm() > 0.0, "param {i} received no gradient");
        }
    }

    #[test]
    fn deepcaps_forward_shape_and_site_coverage() {
        let mut rng = TensorRng::from_seed(163);
        let mut model = DeepCaps::new(&DeepCapsConfig::small(3, 20), &mut rng);
        let x = rng.uniform(&[3, 20, 20], 0.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let lengths = model.forward(&x, &mut rec);
        assert_eq!(lengths.shape(), &[10]);
        let sites = rec.distinct_sites();
        // 18 layer names, all visited.
        let names = model.layer_names();
        assert_eq!(names.len(), 18);
        for name in &names {
            assert!(
                sites.iter().any(|s| &s.layer_name == name),
                "no sites for {name}"
            );
        }
        // Two routing layers: Caps3D and ClassCaps.
        let routing_layers: std::collections::HashSet<_> = sites
            .iter()
            .filter(|s| s.kind == OpKind::Softmax)
            .map(|s| s.layer_name.clone())
            .collect();
        assert_eq!(routing_layers.len(), 2);
        assert!(routing_layers.contains("Caps3D"));
        assert!(routing_layers.contains("ClassCaps"));
    }

    #[test]
    fn deepcaps_backward_reaches_stem() {
        let mut rng = TensorRng::from_seed(164);
        let mut model = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
        let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        model.zero_grad();
        let lengths = model.forward(&x, &mut NoInjection);
        model.backward_from_lengths(&Tensor::ones(lengths.shape()));
        let nonzero = model
            .params_mut()
            .into_iter()
            .filter(|p| p.grad.sq_norm() > 0.0)
            .count();
        let total = model.params_mut().len();
        assert!(
            nonzero == total,
            "{nonzero}/{total} params received gradient"
        );
    }

    #[test]
    fn deepcaps_census_is_mul_dominated_and_conv_heavy() {
        let mut rng = TensorRng::from_seed(165);
        let model = DeepCaps::new(&DeepCapsConfig::paper(), &mut rng);
        let census = model.op_census();
        assert_eq!(census.len(), 18);
        let total: OpCount = census.iter().map(|l| l.ops).sum();
        // Table I shape: ~10^9 muls/adds, 10^6-ish divs, muls >> others.
        assert!(total.mul > 1_000_000_000, "mul {}", total.mul);
        assert!(total.mul >= total.add / 2);
        assert!(total.div < total.mul / 100);
        assert!(total.exp < total.mul / 100);
        assert!(total.sqrt < total.mul / 100);
    }

    #[test]
    fn capsnet_paper_census_magnitudes() {
        let mut rng = TensorRng::from_seed(166);
        let model = CapsNet::new(&CapsNetConfig::paper(), &mut rng);
        let total: OpCount = model.op_census().iter().map(|l| l.ops).sum();
        // Sabour CapsNet is ~100M-1G MACs.
        assert!(total.mul > 50_000_000);
        assert!(total.div > 0 && total.sqrt > 0 && total.exp > 0);
    }

    #[test]
    fn caps_units_round_trip() {
        let mut rng = TensorRng::from_seed(167);
        let t = rng.uniform(&[3, 4, 2, 5], -1.0, 1.0);
        let u = caps_to_units(&t);
        assert_eq!(u.shape(), &[30, 4]);
        let back = units_to_caps(&u, 3, 4, 2, 5);
        assert_eq!(back, t);
    }

    #[test]
    fn predict_returns_argmax() {
        let mut rng = TensorRng::from_seed(168);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let lengths = model.forward(&x, &mut NoInjection);
        assert_eq!(model.predict(&x), lengths.argmax().unwrap());
    }
}
