//! Trainable 2-D convolution (im2col forward, col2im backward).
//!
//! The weight tensor's `[C_out, C_in, k, k]` layout is already the
//! `[C_out, C_in·k·k]` GEMM operand, so forward and backward feed the
//! flat weight storage straight into the blocked [`gemm`] kernels —
//! no reshape copies on the hot path.

use redcane_tensor::ops::{gemm, Conv2dSpec};
use redcane_tensor::{Tensor, TensorRng};

use crate::init::{conv_fans, he_normal};
use crate::layer::Layer;
use crate::param::Param;

/// A 2-D convolution layer over `[C_in, H, W]` samples.
///
/// Weight layout is `[C_out, C_in, k, k]`, bias `[C_out]`.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    spec: Conv2dSpec,
    c_in: usize,
    c_out: usize,
    cache: Option<Cache>,
    /// Recycled im2col buffer (handed to the cache each forward and
    /// reclaimed in backward); contents are stale between uses.
    cols_pool: Vec<f32>,
    /// Recycled dW scratch (overwrite-mode GEMM output).
    dw_pool: Vec<f32>,
    /// Recycled dcols scratch (overwrite-mode GEMM output).
    dcols_pool: Vec<f32>,
}

#[derive(Debug, Clone)]
struct Cache {
    cols: Tensor,
    input_shape: [usize; 3],
    out_hw: [usize; 2],
}

impl Conv2d {
    /// Creates a conv layer with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics on impossible geometry (`kernel == 0` or `stride == 0`).
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut TensorRng,
    ) -> Self {
        // lint: allow(panic) — geometry was validated when the layer was constructed
        let spec = Conv2dSpec::new(kernel, stride, padding).expect("valid conv geometry");
        let (fan_in, _) = conv_fans(c_out, c_in, kernel);
        let weight = he_normal(&[c_out, c_in, kernel, kernel], fan_in, rng);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[c_out])),
            spec,
            c_in,
            c_out,
            cache: None,
            cols_pool: Vec::new(),
            dw_pool: Vec::new(),
            dcols_pool: Vec::new(),
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Immutable view of the weights (for analysis/serialization).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Immutable view of the bias.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Replaces the weights (e.g. when loading a trained model).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn set_weights(&mut self, weight: Tensor, bias: Tensor) {
        assert_eq!(weight.shape(), self.weight.value.shape(), "weight shape");
        assert_eq!(bias.shape(), self.bias.value.shape(), "bias shape");
        self.weight.value = weight;
        self.bias.value = bias;
    }
}

impl Conv2d {
    /// Forward pass over a raw `[C_in, H, W]` slice — the shape-free twin
    /// of [`Layer::forward`] used by capsule layers whose tensors carry a
    /// `[C, D, H, W]` shape (channel folding becomes free instead of a
    /// reshape copy).
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == c_in * h * w` with valid geometry.
    pub fn forward_chw(&mut self, data: &[f32], h: usize, w: usize) -> Tensor {
        assert_eq!(data.len(), self.c_in * h * w, "Conv2d input size");
        // lint: allow(panic) — geometry was validated when the layer was constructed
        let h_out = self.spec.output_size(h).expect("valid geometry");
        // lint: allow(panic) — geometry was validated when the layer was constructed
        let w_out = self.spec.output_size(w).expect("valid geometry");
        let k2 = self.c_in * self.spec.kernel * self.spec.kernel;
        let n = h_out * w_out;
        // Inference-only callers never run backward, so reclaim the
        // previous forward's im2col buffer before it is dropped.
        if let Some(old) = self.cache.take() {
            self.cols_pool = old.cols.into_vec();
        }
        // Unroll into the recycled buffer (im2col writes every slot).
        let mut cols_buf = std::mem::take(&mut self.cols_pool);
        cols_buf.resize(k2 * n, 0.0);
        redcane_tensor::ops::conv::im2col_slice(data, self.c_in, h, w, self.spec, &mut cols_buf)
            // lint: allow(panic) — input dims were validated against the spec just above
            .expect("valid conv input");
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let cols = Tensor::from_vec(cols_buf, &[k2, n]).expect("cols shape");
        let mut out = vec![0.0f32; self.c_out * n];
        gemm::gemm_nn(
            self.weight.value.data(),
            cols.data(),
            &mut out,
            self.c_out,
            k2,
            n,
        );
        // Add bias per output channel.
        for (co, orow) in out.chunks_exact_mut(n).enumerate() {
            let b = self.bias.value.data()[co];
            if b != 0.0 {
                for v in orow {
                    *v += b;
                }
            }
        }
        self.cache = Some(Cache {
            cols,
            input_shape: [self.c_in, h, w],
            out_hw: [h_out, w_out],
        });
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(out, &[self.c_out, h_out, w_out]).expect("conv output shape")
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 3, "Conv2d expects [C,H,W]");
        assert_eq!(x.shape()[0], self.c_in, "Conv2d input channels");
        self.forward_chw(x.data(), x.shape()[1], x.shape()[2])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
        let cache = self.cache.take().expect("Conv2d::backward before forward");
        let [h_out, w_out] = cache.out_hw;
        let n = h_out * w_out;
        let k2 = self.c_in * self.spec.kernel * self.spec.kernel;
        assert_eq!(
            grad_out.len(),
            self.c_out * n,
            "grad_out shape must match forward output"
        );
        let dy = grad_out.data(); // flat [C_out, H_out·W_out]
                                  // dW = dY · colsᵀ, built in a (recycled) temp and then summed
                                  // into the accumulator so the gradient order matches per-sample
                                  // accumulation exactly.
        let mut dw = std::mem::take(&mut self.dw_pool);
        dw.resize(self.c_out * k2, 0.0);
        gemm::gemm_nt_over(dy, cache.cols.data(), &mut dw, self.c_out, n, k2);
        for (g, &d) in self.weight.grad.data_mut().iter_mut().zip(&dw) {
            *g += d;
        }
        self.dw_pool = dw;
        // db = row sums of dY
        for (g, row) in self.bias.grad.data_mut().iter_mut().zip(dy.chunks_exact(n)) {
            *g += row.iter().sum::<f32>();
        }
        // dX = col2im(Wᵀ · dY)
        let mut dcols = std::mem::take(&mut self.dcols_pool);
        dcols.resize(k2 * n, 0.0);
        gemm::gemm_tn_over(self.weight.value.data(), dy, &mut dcols, k2, self.c_out, n);
        let [c, h, w] = cache.input_shape;
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let dcols = Tensor::from_vec(dcols, &[k2, n]).expect("dcols shape");
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let dx = dcols.col2im(c, h, w, self.spec).expect("col2im");
        // Reclaim the scratch buffers for the next sample.
        self.dcols_pool = dcols.into_vec();
        self.cols_pool = cache.cols.into_vec();
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check of the full layer.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = TensorRng::from_seed(50);
        let mut layer = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = rng.uniform(&[2, 5, 5], -1.0, 1.0);
        // Loss = sum of outputs weighted by fixed random coefficients.
        let coeffs = rng.uniform(&[3, 5, 5], -1.0, 1.0);
        let loss = |layer: &mut Conv2d, x: &Tensor| -> f32 {
            layer.forward(x).mul(&coeffs).unwrap().sum()
        };

        // Analytic gradients.
        layer.zero_grad();
        let _ = layer.forward(&x);
        let dx = layer.backward(&coeffs);

        let eps = 1e-2f32;
        // Input gradient.
        for idx in [0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            let ana = dx.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dX[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // Weight gradient.
        layer.zero_grad();
        let _ = layer.forward(&x);
        let _ = layer.backward(&coeffs);
        let wgrad = layer.params_mut()[0].grad.clone();
        for idx in [0usize, 5, 17, 53] {
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.weight.value.data_mut()[idx] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = wgrad.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dW[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // Bias gradient.
        layer.zero_grad();
        let _ = layer.forward(&x);
        let _ = layer.backward(&coeffs);
        let bgrad = layer.params_mut()[1].grad.clone();
        for idx in 0..3 {
            let orig = layer.bias.value.data()[idx];
            layer.bias.value.data_mut()[idx] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.bias.value.data_mut()[idx] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.bias.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = bgrad.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "db[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn output_shape_follows_geometry() {
        let mut rng = TensorRng::from_seed(51);
        let mut layer = Conv2d::new(3, 8, 3, 2, 1, &mut rng);
        let y = layer.forward(&Tensor::zeros(&[3, 16, 16]));
        assert_eq!(y.shape(), &[8, 8, 8]);
    }

    #[test]
    fn gradient_accumulates_over_samples() {
        let mut rng = TensorRng::from_seed(52);
        let mut layer = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        let x = rng.uniform(&[1, 4, 4], -1.0, 1.0);
        let g = Tensor::ones(&[1, 2, 2]);
        layer.zero_grad();
        let _ = layer.forward(&x);
        let _ = layer.backward(&g);
        let once = layer.params_mut()[0].grad.clone();
        let _ = layer.forward(&x);
        let _ = layer.backward(&g);
        let twice = layer.params_mut()[0].grad.clone();
        for (a, b) in once.data().iter().zip(twice.data()) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = TensorRng::from_seed(53);
        let mut layer = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        let _ = layer.backward(&Tensor::zeros(&[1, 2, 2]));
    }

    #[test]
    fn set_weights_replaces_and_validates() {
        let mut rng = TensorRng::from_seed(54);
        let mut layer = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        let w = Tensor::ones(&[2, 1, 3, 3]);
        let b = Tensor::from_slice(&[1.0, -1.0]);
        layer.set_weights(w, b);
        let y = layer.forward(&Tensor::ones(&[1, 3, 3]));
        assert_eq!(y.data(), &[10.0, 8.0]);
    }

    #[test]
    fn param_count_is_correct() {
        let mut rng = TensorRng::from_seed(55);
        let mut layer = Conv2d::new(4, 8, 3, 1, 1, &mut rng);
        assert_eq!(layer.param_count(), 8 * 4 * 9 + 8);
    }
}
