//! Behavioral 16-bit adders: exact ripple-carry and lower-part-OR (LOA).
//!
//! The paper's Fig. 5 case study pairs the `NGR` approximate multiplier with
//! the `5LT` approximate adder and shows the adder contributes only ~2 % of
//! the achievable energy saving. [`LowerOrAdder`] is our `5LT` stand-in.

use std::fmt;

/// Behavioral contract for a 16-bit unsigned adder (the accumulator width
/// of an 8-bit MAC datapath).
pub trait Adder16: Send + Sync + fmt::Debug {
    /// Computes the (possibly approximate) sum, saturating at `u16::MAX`.
    fn add(&self, a: u16, b: u16) -> u16;

    /// A one-line human-readable description of the microarchitecture.
    fn description(&self) -> String;
}

/// Accurate 16-bit ripple-carry adder (saturating).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExactAdder;

impl Adder16 for ExactAdder {
    fn add(&self, a: u16, b: u16) -> u16 {
        a.saturating_add(b)
    }

    fn description(&self) -> String {
        "exact 16-bit ripple-carry adder".to_string()
    }
}

/// Lower-part-OR adder (LOA): the `k` least-significant bits are computed
/// with a plain OR (no carries), the upper `16-k` bits with an exact adder
/// receiving no carry-in from the lower part.
///
/// This is the classic low-power approximate adder; our stand-in for the
/// paper's `add16u_5LT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOrAdder {
    /// Number of OR-approximated low bits (`0..=16`).
    pub k: u8,
}

impl LowerOrAdder {
    /// Creates a LOA with `k` approximate low bits.
    ///
    /// # Panics
    ///
    /// Panics if `k > 16`.
    pub fn new(k: u8) -> Self {
        assert!(k <= 16);
        LowerOrAdder { k }
    }
}

impl Adder16 for LowerOrAdder {
    fn add(&self, a: u16, b: u16) -> u16 {
        if self.k == 0 {
            return a.saturating_add(b);
        }
        if self.k >= 16 {
            return a | b;
        }
        let mask = (1u32 << self.k) - 1;
        let low = (a as u32 | b as u32) & mask;
        let high = ((a as u32 >> self.k) + (b as u32 >> self.k)) << self.k;
        (high | low).min(u16::MAX as u32) as u16
    }

    fn description(&self) -> String {
        format!("lower-part-OR adder, {} approximate low bits", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_adder_adds() {
        let a = ExactAdder;
        assert_eq!(a.add(3, 4), 7);
        assert_eq!(a.add(u16::MAX, 1), u16::MAX); // saturates
    }

    #[test]
    fn loa_zero_bits_is_exact() {
        let a = LowerOrAdder::new(0);
        for &(x, y) in &[(0u16, 0u16), (123, 456), (40000, 20000)] {
            assert_eq!(a.add(x, y), x.saturating_add(y));
        }
    }

    #[test]
    fn loa_never_overestimates_by_much_and_bounded() {
        // LOA error is bounded by 2^k (the lost low-part carries).
        let k = 5u8;
        let a = LowerOrAdder::new(k);
        let bound = 1i32 << k;
        for x in (0..=u16::MAX).step_by(251) {
            for y in (0..=u16::MAX).step_by(257) {
                let exact = x.saturating_add(y) as i32;
                if exact == u16::MAX as i32 {
                    continue; // saturation region
                }
                let approx = a.add(x, y) as i32;
                assert!(
                    (approx - exact).abs() < bound,
                    "{x}+{y}: {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn loa_or_identity_when_no_low_overlap() {
        // If low parts have disjoint bits, OR == ADD and LOA is exact.
        let a = LowerOrAdder::new(4);
        assert_eq!(a.add(0b0001, 0b0010), 0b0011);
        assert_eq!(a.add(0x10, 0x21), 0x31);
    }

    #[test]
    fn loa_full_width_is_or() {
        let a = LowerOrAdder::new(16);
        assert_eq!(a.add(0xF0F0, 0x0F0F), 0xFFFF);
    }

    #[test]
    fn loa_error_grows_with_k() {
        fn mean_abs_err(k: u8) -> f64 {
            let a = LowerOrAdder::new(k);
            let mut total = 0f64;
            let mut n = 0u32;
            for x in (0..1u32 << 14).step_by(97) {
                for y in (0..1u32 << 14).step_by(89) {
                    let exact = (x + y) as i64;
                    let approx = a.add(x as u16, y as u16) as i64;
                    total += (approx - exact).abs() as f64;
                    n += 1;
                }
            }
            total / n as f64
        }
        assert!(mean_abs_err(2) < mean_abs_err(6));
        assert!(mean_abs_err(6) < mean_abs_err(10));
    }

    #[test]
    fn descriptions_mention_parameters() {
        assert!(LowerOrAdder::new(5).description().contains('5'));
        assert!(ExactAdder.description().contains("exact"));
    }
}
