//! Property-based tests pinning the blocked GEMM micro-kernels and the
//! (optionally parallel) convolution lowering to their naive reference
//! twins — including the degenerate `m/k/n = 1` shapes and sizes that
//! don't divide the register tile.

use proptest::prelude::*;
use redcane_tensor::ops::{gemm, Conv2dSpec};
use redcane_tensor::{par, Tensor, TensorRng};

/// Serializes the tests that mutate the process-wide thread-count
/// override, so one test's reset cannot land mid-way through another's
/// 1-thread leg and make the invariance comparison vacuous.
static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Dimensions straddling the micro-tile (`MR = 4`) and k-unroll
/// boundaries, degenerate 1s included.
fn dim() -> impl Strategy<Value = usize> {
    (0usize..64).prop_map(|v| match v {
        0 => 1,
        1 => 33,
        2 => 300,
        other => 2 + (other % 16),
    })
}

fn filled(rng: &mut TensorRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.next_uniform(-2.0, 2.0)).collect()
}

/// Direct quadruple-loop convolution, the oracle conv2d is held to.
fn naive_conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: Conv2dSpec) -> Tensor {
    let (c_in, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let c_out = weight.shape()[0];
    let k = spec.kernel;
    let h_out = spec.output_size(h).unwrap();
    let w_out = spec.output_size(w).unwrap();
    let mut out = Tensor::zeros(&[c_out, h_out, w_out]);
    for co in 0..c_out {
        for oy in 0..h_out {
            for ox in 0..w_out {
                let mut acc = bias.data()[co];
                for ci in 0..c_in {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                continue;
                            }
                            acc += input.get(&[ci, iy as usize, ix as usize]).unwrap()
                                * weight.get(&[co, ci, ky, kx]).unwrap();
                        }
                    }
                }
                out.set(&[co, oy, ox], acc).unwrap();
            }
        }
    }
    out
}

proptest! {
    /// The blocked kernels are bit-identical to the naive loops (a far
    /// stronger bound than the 1e-5 the training stack needs).
    #[test]
    fn blocked_gemm_matches_reference(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let mut rng = TensorRng::from_seed(seed);
        let a = filled(&mut rng, m * k);
        let b = filled(&mut rng, k * n);
        let mut fast = vec![0.0f32; m * n];
        let mut naive = vec![0.0f32; m * n];
        gemm::gemm_nn(&a, &b, &mut fast, m, k, n);
        gemm::reference::gemm_nn(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(&fast, &naive);

        let at = filled(&mut rng, k * m);
        let mut fast = vec![0.0f32; m * n];
        let mut naive = vec![0.0f32; m * n];
        gemm::gemm_tn(&at, &b, &mut fast, m, k, n);
        gemm::reference::gemm_tn(&at, &b, &mut naive, m, k, n);
        prop_assert_eq!(&fast, &naive);

        let bt = filled(&mut rng, n * k);
        let mut fast = vec![0.0f32; m * n];
        let mut naive = vec![0.0f32; m * n];
        gemm::gemm_nt(&a, &bt, &mut fast, m, k, n);
        gemm::reference::gemm_nt(&a, &bt, &mut naive, m, k, n);
        prop_assert_eq!(&fast, &naive);
    }

    /// conv2d (im2col + blocked GEMM, parallel im2col above the size
    /// threshold) matches the direct convolution within 1e-5, at one and
    /// at four worker threads — and the two worker counts agree bitwise.
    #[test]
    fn conv2d_matches_naive_at_any_thread_count(
        c_in in 1usize..4,
        c_out in 1usize..5,
        hw in 5usize..12,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..1000,
    ) {
        // hw ≥ 5 > kernel ≤ 3, so the geometry is always valid.
        let _guard = THREADS_LOCK.lock().unwrap();
        let mut rng = TensorRng::from_seed(seed);
        let input = rng.uniform(&[c_in, hw, hw], -1.0, 1.0);
        let weight = rng.uniform(&[c_out, c_in, kernel, kernel], -0.5, 0.5);
        let bias = rng.uniform(&[c_out], -0.1, 0.1);
        let spec = Conv2dSpec::new(kernel, stride, padding).unwrap();

        par::set_threads(1);
        let serial = input.conv2d(&weight, &bias, spec).unwrap();
        par::set_threads(4);
        let threaded = input.conv2d(&weight, &bias, spec).unwrap();
        par::set_threads(0);
        prop_assert_eq!(&serial, &threaded);

        let oracle = naive_conv2d(&input, &weight, &bias, spec);
        prop_assert_eq!(serial.shape(), oracle.shape());
        for (a, b) in serial.data().iter().zip(oracle.data()) {
            prop_assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    /// im2col must agree with itself across thread counts bitwise (it is
    /// a pure data movement, chunked per output row when parallel).
    #[test]
    fn im2col_is_thread_count_invariant(
        c in 1usize..6,
        hw in 4usize..16,
        kernel in 1usize..4,
        seed in 0u64..1000,
    ) {
        // hw ≥ 4 > kernel ≤ 3, so the geometry is always valid.
        let _guard = THREADS_LOCK.lock().unwrap();
        let mut rng = TensorRng::from_seed(seed);
        let input = rng.uniform(&[c, hw, hw], -1.0, 1.0);
        let spec = Conv2dSpec::new(kernel, 1, 1).unwrap();
        par::set_threads(1);
        let serial = input.im2col(spec).unwrap();
        par::set_threads(4);
        let threaded = input.im2col(spec).unwrap();
        par::set_threads(0);
        prop_assert_eq!(serial, threaded);
    }
}
