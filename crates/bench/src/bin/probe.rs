use std::time::Instant;
use redcane_capsnet::{train, evaluate, CapsModel, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig, TrainConfig, inject::NoInjection};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_tensor::TensorRng;

fn main() {
    let cfg = GenerateConfig { train: 1500, test: 300, seed: 1 };
    let tcfg = TrainConfig { epochs: 6, batch_size: 16, lr: 2e-3, seed: 3, verbose: true };

    let pair = generate(Benchmark::MnistLike, &cfg);
    let mut rng = TensorRng::from_seed(42);
    let mut m = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
    let t0 = Instant::now();
    let rep = train(&mut m, &pair.train, &tcfg);
    let acc = evaluate(&mut m, &pair.test, &mut NoInjection);
    println!("CapsNet mnist-like: train_acc={:.3} test_acc={:.3} in {:?}", rep.train_accuracy, acc, t0.elapsed());

    let pair = generate(Benchmark::Cifar10Like, &cfg);
    let mut m = DeepCaps::new(&DeepCapsConfig::small(3, 20), &mut rng);
    let t0 = Instant::now();
    let rep = train(&mut m, &pair.train, &tcfg);
    let acc = evaluate(&mut m, &pair.test, &mut NoInjection);
    println!("DeepCaps cifar-like: train_acc={:.3} test_acc={:.3} in {:?}", rep.train_accuracy, acc, t0.elapsed());
}
