//! The store itself: a directory of artifact files plus the
//! `load_or_train` entry point every consumer goes through.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use redcane_capsnet::io::{weights_from_bytes, weights_to_bytes};
use redcane_capsnet::CapsModel;
use redcane_trace as trace;

use crate::format::{decode_artifact, encode_artifact, is_not_found};
use crate::{ArtifactError, ArtifactKey, ArtifactPayload};

/// Default store directory, relative to the working directory.
pub const DEFAULT_STORE_DIR: &str = ".redcane-artifacts";

/// Environment variable overriding the store directory. An empty value
/// is treated as unset.
pub const STORE_ENV_VAR: &str = "REDCANE_ARTIFACTS";

/// Whether an artifact came out of a fresh training run or was
/// restored from the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The producer ran (training, calibration, characterization).
    Trained,
    /// The artifact was loaded from the store; zero training epochs ran.
    Restored,
}

impl Provenance {
    /// Lowercase label for logs and JSON (`trained` / `restored`).
    pub fn label(self) -> &'static str {
        match self {
            Provenance::Trained => "trained",
            Provenance::Restored => "restored",
        }
    }
}

/// A directory of artifact files addressed by [`ArtifactKey`].
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (without touching the filesystem) a store rooted at `dir`.
    /// The directory is created lazily on first save.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore { dir: dir.into() }
    }

    /// Resolves the store directory from an explicit `--artifacts` flag,
    /// the [`STORE_ENV_VAR`] environment variable, or
    /// [`DEFAULT_STORE_DIR`], in that precedence order. `no_cache`
    /// disables the store entirely (`None` → always train, never save).
    pub fn resolve_dir(flag: Option<&str>, no_cache: bool) -> Option<PathBuf> {
        if no_cache {
            return None;
        }
        if let Some(dir) = flag {
            return Some(PathBuf::from(dir));
        }
        match std::env::var(STORE_ENV_VAR) {
            Ok(dir) if !dir.is_empty() => Some(PathBuf::from(dir)),
            _ => Some(PathBuf::from(DEFAULT_STORE_DIR)),
        }
    }

    /// Store directory shared by in-repo tests: [`STORE_ENV_VAR`] when
    /// set, otherwise a fixed subdirectory of the system temp dir, so
    /// repeated test runs on one machine reuse each other's training.
    pub fn for_tests() -> Self {
        let dir = match std::env::var(STORE_ENV_VAR) {
            Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => std::env::temp_dir().join("redcane-artifacts"),
        };
        ArtifactStore::new(dir)
    }

    /// Root directory of this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute-or-relative path the given key lives at.
    pub fn path_for(&self, key: &ArtifactKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Loads the artifact for `key`, applying its weights into `model`.
    /// Fails loudly ([`ArtifactError`]) on missing, truncated, corrupt,
    /// wrong-schema or wrong-key entries — and on weights whose tensor
    /// shapes the model rejects.
    pub fn load(
        &self,
        key: &ArtifactKey,
        model: &mut dyn CapsModel,
    ) -> Result<ArtifactPayload, ArtifactError> {
        let data = fs::read(self.path_for(key))?;
        let (weights, payload) = decode_artifact(key, &data)?;
        weights_from_bytes(model, &weights).map_err(|e| ArtifactError::Corrupt {
            what: format!("weight codec rejected WGHT section: {e}"),
        })?;
        Ok(payload)
    }

    /// Serializes `model`'s weights plus `payload` under `key`,
    /// creating the store directory if needed. The write goes through a
    /// temp file and an atomic rename so a crash never leaves a torn
    /// entry under the final name.
    pub fn save(
        &self,
        key: &ArtifactKey,
        model: &mut dyn CapsModel,
        payload: &ArtifactPayload,
    ) -> Result<PathBuf, ArtifactError> {
        fs::create_dir_all(&self.dir)?;
        let weights = weights_to_bytes(model);
        let encoded = encode_artifact(key, &weights, payload);
        let path = self.path_for(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, &encoded)?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// See the free function [`load_or_train`]; this is the same with
    /// the store always present.
    pub fn load_or_train<M, F>(
        &self,
        key: &ArtifactKey,
        model: &mut M,
        produce: F,
    ) -> (ArtifactPayload, Provenance)
    where
        M: CapsModel,
        F: FnOnce(&mut M) -> ArtifactPayload,
    {
        load_or_train(Some(self), key, model, produce)
    }
}

/// The single entry point consumers use: restore the artifact for
/// `key` into `model` if the store holds a valid one, otherwise run
/// `produce` (train/calibrate/characterize) and persist its result.
///
/// A rejected entry (corrupt, truncated, stale schema, wrong key,
/// shape-mismatched weights) is reported with its named error — as a
/// structured `artifact_heal` trace event when the profiler is on,
/// falling back to stderr otherwise, and **once per healed entry per
/// process** either way, so a multi-model sweep tripping repeatedly
/// over the same bad file names it exactly once — then retrained and
/// overwritten. With `store == None` (`--no-cache`), `produce` always
/// runs and nothing is written — bit-for-bit the same model and
/// payload as a cache miss.
///
/// Store traffic lands in the `Artifact*` work counters, and `produce`
/// runs under the profiler's `Train` region in every arm, so the
/// run-region counter totals of a profiled benchmark are identical
/// whether the store was cold, warm or disabled.
pub fn load_or_train<M, F>(
    store: Option<&ArtifactStore>,
    key: &ArtifactKey,
    model: &mut M,
    produce: F,
) -> (ArtifactPayload, Provenance)
where
    M: CapsModel,
    F: FnOnce(&mut M) -> ArtifactPayload,
{
    let Some(store) = store else {
        let _train = trace::region(trace::Region::Train);
        return (produce(model), Provenance::Trained);
    };
    match store.load(key, model) {
        Ok(payload) => {
            if trace::enabled() {
                trace::add(trace::Counter::ArtifactHits, 1);
                trace::emit(
                    "artifact_restore",
                    store.path_for(key).display().to_string(),
                );
            }
            (payload, Provenance::Restored)
        }
        Err(err) => {
            if is_not_found(&err) {
                if trace::enabled() {
                    trace::add(trace::Counter::ArtifactMisses, 1);
                }
            } else {
                let path = store.path_for(key);
                if trace::enabled() {
                    trace::add(trace::Counter::ArtifactHeals, 1);
                }
                if first_heal_report(&path) {
                    let detail = format!(
                        "healing {}: rejected with `{err}`; retraining and overwriting",
                        path.display()
                    );
                    if !trace::emit("artifact_heal", detail.clone()) {
                        eprintln!("artifact store: {detail}");
                    }
                }
            }
            let payload = {
                let _train = trace::region(trace::Region::Train);
                produce(model)
            };
            if let Err(err) = store.save(key, model, &payload) {
                let detail = format!(
                    "failed to save {} ({err}); continuing untrained-cache",
                    store.path_for(key).display()
                );
                if !trace::emit("artifact_save_error", detail.clone()) {
                    eprintln!("artifact store: {detail}");
                }
            }
            (payload, Provenance::Trained)
        }
    }
}

/// Records that `path`'s rejection is about to be reported; `true` on
/// the first call per path in this process, `false` after. Keeps heal
/// reports to one line per entry however many consumers trip over the
/// same bad file.
fn first_heal_report(path: &Path) -> bool {
    static REPORTED: OnceLock<Mutex<BTreeSet<PathBuf>>> = OnceLock::new();
    REPORTED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
        .expect("heal-report set poisoned")
        .insert(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heal_reports_fire_once_per_path() {
        let a = Path::new("/tmp/rcas-test/one.v2.rca");
        let b = Path::new("/tmp/rcas-test/two.v2.rca");
        assert!(first_heal_report(a), "first rejection of a path reports");
        assert!(!first_heal_report(a), "repeat rejections stay silent");
        assert!(first_heal_report(b), "a different path reports again");
        assert!(!first_heal_report(b));
    }
}
