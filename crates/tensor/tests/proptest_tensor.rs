//! Property-based tests for the tensor substrate's core invariants.

use proptest::prelude::*;
use redcane_tensor::{ops::Conv2dSpec, Tensor, TensorRng};

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_with_shape(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-100.0f32..100.0, n)
        .prop_map(move |data| Tensor::from_vec(data, &shape).expect("sized to shape"))
}

fn small_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_with_shape)
}

proptest! {
    #[test]
    fn add_is_commutative(t in small_tensor(), seed in 0u64..1000) {
        let mut rng = TensorRng::from_seed(seed);
        let other = rng.uniform(t.shape(), -10.0, 10.0);
        prop_assert_eq!(t.add(&other).unwrap(), other.add(&t).unwrap());
    }

    #[test]
    fn sub_then_add_round_trips(t in small_tensor(), seed in 0u64..1000) {
        let mut rng = TensorRng::from_seed(seed);
        let other = rng.uniform(t.shape(), -10.0, 10.0);
        let back = t.sub(&other).unwrap().add(&other).unwrap();
        for (a, b) in t.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn reshape_preserves_sum(t in small_tensor()) {
        let flat = t.flattened();
        prop_assert!((t.sum() - flat.sum()).abs() < 1e-3);
    }

    #[test]
    fn sum_axis_preserves_total(t in small_tensor(), axis_pick in 0usize..8) {
        let axis = axis_pick % t.ndim();
        let reduced = t.sum_axis(axis).unwrap();
        prop_assert!((reduced.sum() - t.sum()).abs() < 1e-2 * (1.0 + t.sum().abs()));
    }

    #[test]
    fn softmax_outputs_are_probabilities(t in small_tensor(), axis_pick in 0usize..8) {
        let axis = axis_pick % t.ndim();
        let s = t.softmax_axis(axis).unwrap();
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let sums = s.sum_axis(axis).unwrap();
        for &v in sums.data() {
            prop_assert!((v - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn squash_norm_strictly_below_one(t in small_tensor(), axis_pick in 0usize..8) {
        let axis = axis_pick % t.ndim();
        let v = t.squash_axis(axis).unwrap();
        let norms = v.norm_axis(axis).unwrap();
        prop_assert!(norms.data().iter().all(|&n| (0.0..1.0).contains(&n)));
    }

    #[test]
    fn range_is_nonnegative_and_translation_invariant(t in small_tensor(), shift in -50.0f32..50.0) {
        let r1 = t.range();
        let r2 = t.add_scalar(shift).range();
        prop_assert!(r1 >= 0.0);
        prop_assert!((r1 - r2).abs() < 1e-2 + 1e-4 * r1.abs());
    }

    #[test]
    fn permute_then_inverse_is_identity(seed in 0u64..1000) {
        let mut rng = TensorRng::from_seed(seed);
        let t = rng.uniform(&[3, 4, 2], -1.0, 1.0);
        let perm = [2usize, 0, 1];
        // inverse of [2,0,1] is [1,2,0]
        let inv = [1usize, 2, 0];
        let back = t.permute(&perm).unwrap().permute(&inv).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..500) {
        let mut rng = TensorRng::from_seed(seed);
        let a = rng.uniform(&[3, 4], -1.0, 1.0);
        let b = rng.uniform(&[4, 2], -1.0, 1.0);
        let c = rng.uniform(&[4, 2], -1.0, 1.0);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn conv_is_linear_in_input(seed in 0u64..200) {
        let mut rng = TensorRng::from_seed(seed);
        let spec = Conv2dSpec::new(3, 1, 1).unwrap();
        let w = rng.uniform(&[2, 1, 3, 3], -1.0, 1.0);
        let zero_bias = Tensor::zeros(&[2]);
        let x1 = rng.uniform(&[1, 5, 5], -1.0, 1.0);
        let x2 = rng.uniform(&[1, 5, 5], -1.0, 1.0);
        let lhs = x1.add(&x2).unwrap().conv2d(&w, &zero_bias, spec).unwrap();
        let rhs = x1
            .conv2d(&w, &zero_bias, spec)
            .unwrap()
            .add(&x2.conv2d(&w, &zero_bias, spec).unwrap())
            .unwrap();
        for (a, b) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_slice_round_trip(seed in 0u64..500, split in 1usize..4) {
        let mut rng = TensorRng::from_seed(seed);
        let t = rng.uniform(&[4, 5], -1.0, 1.0);
        let split = split.min(4);
        let a = t.slice_axis(0, 0, split).unwrap();
        let b = t.slice_axis(0, split, 4).unwrap();
        let joined = Tensor::concat(&[&a, &b], 0).unwrap();
        prop_assert_eq!(t, joined);
    }
}
