//! MNIST-like renderer: seven-segment digit glyphs with handwriting-style
//! jitter (random stroke thickness, rotation, translation, pixel noise).

use redcane_tensor::{Tensor, TensorRng};

use crate::canvas::Canvas;

/// Segment activation per digit, in the order A, B, C, D, E, F, G
/// (A = top bar, B = top-right, C = bottom-right, D = bottom bar,
/// E = bottom-left, F = top-left, G = middle bar).
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, true, true, true, false],     // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],    // 2
    [true, true, true, true, false, false, true],    // 3
    [false, true, true, false, false, true, true],   // 4
    [true, false, true, true, false, true, true],    // 5
    [true, false, true, true, true, true, true],     // 6
    [true, true, true, false, false, false, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Renders a digit `0..=9` onto a `[1, h, w]` tensor.
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn render(digit: usize, h: usize, w: usize, rng: &mut TensorRng) -> Tensor {
    assert!(digit <= 9, "digit classes are 0..=9");
    let mut canvas = Canvas::new(h, w);
    let hf = h as f32;
    let wf = w as f32;
    // Glyph box with margins.
    let top = hf * 0.15 + rng.next_uniform(-0.5, 0.5);
    let bottom = hf * 0.85 + rng.next_uniform(-0.5, 0.5);
    let left = wf * 0.30 + rng.next_uniform(-0.5, 0.5);
    let right = wf * 0.70 + rng.next_uniform(-0.5, 0.5);
    let mid = (top + bottom) / 2.0;
    let thickness = rng.next_uniform(1.0, 1.9);
    let ink = rng.next_uniform(0.75, 1.0);

    let segs = SEGMENTS[digit];
    // (y0, x0, y1, x1) per segment.
    let coords = [
        (top, left, top, right),       // A
        (top, right, mid, right),      // B
        (mid, right, bottom, right),   // C
        (bottom, left, bottom, right), // D
        (mid, left, bottom, left),     // E
        (top, left, mid, left),        // F
        (mid, left, mid, right),       // G
    ];
    for (on, (y0, x0, y1, x1)) in segs.iter().zip(coords) {
        if *on {
            canvas.line(y0, x0, y1, x1, thickness, ink);
        }
    }

    let angle = rng.next_uniform(-0.18, 0.18);
    let dy = rng.next_uniform(-1.2, 1.2);
    let dx = rng.next_uniform(-1.2, 1.2);
    let mut canvas = canvas.jitter(angle, dy, dx);
    canvas.add_noise(0.04, rng);
    canvas.to_tensor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_digits_with_ink() {
        let mut rng = TensorRng::from_seed(70);
        for d in 0..10 {
            let t = render(d, 16, 16, &mut rng);
            assert_eq!(t.shape(), &[1, 16, 16]);
            assert!(t.sum() > 3.0, "digit {d} should have visible strokes");
        }
    }

    #[test]
    fn one_has_less_ink_than_eight() {
        let mut rng = TensorRng::from_seed(71);
        let mut one = 0.0;
        let mut eight = 0.0;
        for _ in 0..8 {
            one += render(1, 16, 16, &mut rng).sum();
            eight += render(8, 16, 16, &mut rng).sum();
        }
        assert!(one < eight, "1 uses 2 segments, 8 uses 7");
    }

    #[test]
    #[should_panic]
    fn rejects_non_digit() {
        let mut rng = TensorRng::from_seed(72);
        let _ = render(10, 16, 16, &mut rng);
    }
}
