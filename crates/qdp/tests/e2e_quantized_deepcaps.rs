//! End-to-end sanity for the paper's second architecture: a trained
//! DeepCaps — all 17 capsule layers, Caps3D routing included — lowered
//! through the architecture-generic pipeline and scored through the
//! [`QuantMeasured`] backend under the **exact**-multiplier uniform
//! assignment must reproduce the float network's predictions. This is
//! the acceptance bar for the generic lowering being a faithful 8-bit
//! execution of the same network rather than a different model.

use redcane::datapath::AccuracyBackend;
use redcane_axmul::MultiplierLibrary;
use redcane_capsnet::{evaluate_clean, train, CapsModel, DeepCaps, DeepCapsConfig, TrainConfig};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_qdp::{DatapathAssignment, QuantMeasured};
use redcane_tensor::TensorRng;

#[test]
fn quantized_deepcaps_matches_float_within_tolerance() {
    let pair = generate(
        Benchmark::MnistLike,
        &GenerateConfig {
            train: 300,
            test: 50,
            seed: 43,
        },
    );
    let mut rng = TensorRng::from_seed(4300);
    let mut model = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
    train(
        &mut model,
        &pair.train,
        &TrainConfig {
            epochs: 6,
            batch_size: 16,
            lr: 2e-3,
            seed: 9,
            verbose: false,
        },
    );
    let eval = pair.test.take(40);
    let float_acc = evaluate_clean(&model, &eval);
    assert!(
        float_acc > 0.2,
        "float DeepCaps must train above 10% chance, got {float_acc}"
    );

    // Calibrate on clean training inputs, lower every layer through
    // the generic pipeline, score the test subset through the measured
    // backend with the exact multiplier at every site.
    let library = MultiplierLibrary::evo_approx_like();
    let backend = QuantMeasured::calibrated(
        &mut model,
        pair.train.samples.iter().take(24).map(|s| &s.image),
        &library,
    )
    .expect("calibration succeeds on trained activations");
    let exact = DatapathAssignment::uniform("mul8u_1JFF");
    let quant_acc = backend.evaluate(&model, &eval, &exact).unwrap();

    // On this seeded run the 8-bit exact datapath reproduces the float
    // predictions bit for bit through all 17 quantized layers: same
    // label on every sample, so the same accuracy.
    for sample in &eval.samples {
        assert_eq!(
            backend
                .qmodel()
                .predict(&sample.image, &exact, backend.luts())
                .unwrap(),
            model.predict(&sample.image),
            "quantized-exact DeepCaps prediction diverges from float"
        );
    }
    assert_eq!(quant_acc, float_acc);

    // Seeded determinism: rebuilding and re-running reproduces the
    // accuracy exactly.
    let backend2 = QuantMeasured::calibrated(
        &mut model,
        pair.train.samples.iter().take(24).map(|s| &s.image),
        &library,
    )
    .expect("calibration is deterministic");
    assert_eq!(quant_acc, backend2.evaluate(&model, &eval, &exact).unwrap());
}
