//! Arithmetic-error characterization of approximate components.
//!
//! Implements Sec. III-B of the paper: sample the error
//! `ΔP = P'(a,b) − P(a,b)` of a component over a representative input set
//! `I` (Eq. 2), optionally accumulated over a MAC chain (1, 9 or 81
//! multiply-accumulates, matching 1×1, 3×3 and 9×9 convolution kernels),
//! then summarize the distribution and express it as the paper's noise
//! parameters:
//!
//! ```text
//! NM(Δ) = stdev(Δ) / R(X)      NA(Δ) = mean(Δ) / R(X)
//! ```
//!
//! where `R(X)` is the value range of the accurate outputs over the same
//! inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::mult::Multiplier8;

/// The input distribution over which a component is characterized.
///
/// The paper highlights (Table IV) that `NM`/`NA` are **dataset dependent**:
/// characterizing with uniform random operands ("Modeled") slightly
/// overestimates the noise relative to operands drawn from the real network
/// ("Real"). `Empirical` carries pools of quantized operand codes sampled
/// from a trained network's layer inputs and weights.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputDistribution {
    /// Independent uniform operands over `0..=255`.
    Uniform,
    /// Operands drawn (with replacement) from empirical pools: `a` from
    /// `activations`, `b` from `weights`.
    Empirical {
        /// Quantized activation codes observed in the network.
        activations: Vec<u8>,
        /// Quantized weight codes of the layer under study.
        weights: Vec<u8>,
    },
}

impl InputDistribution {
    /// Draws one `(a, b)` operand pair.
    ///
    /// # Panics
    ///
    /// Panics if an empirical pool is empty.
    pub fn sample(&self, rng: &mut StdRng) -> (u8, u8) {
        match self {
            InputDistribution::Uniform => (rng.gen::<u8>(), rng.gen::<u8>()),
            InputDistribution::Empirical {
                activations,
                weights,
            } => {
                assert!(
                    !activations.is_empty() && !weights.is_empty(),
                    "empirical input pools must be non-empty"
                );
                let a = activations[rng.gen_range(0..activations.len())];
                let b = weights[rng.gen_range(0..weights.len())];
                (a, b)
            }
        }
    }
}

/// The paper's per-component noise parameters (Sec. III-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParams {
    /// Noise average: `mean(Δ) / R(X)`.
    pub na: f64,
    /// Noise magnitude: `stdev(Δ) / R(X)`.
    pub nm: f64,
}

/// A summarized arithmetic-error distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorProfile {
    /// Number of sampled input sets.
    pub samples: usize,
    /// Mean error `m(Δ)`.
    pub mean: f64,
    /// Standard deviation `std(Δ)`.
    pub std: f64,
    /// Smallest observed error.
    pub min: f64,
    /// Largest observed error.
    pub max: f64,
    /// Range `R(X)` of the *accurate* outputs over the same inputs.
    pub output_range: f64,
    /// Error histogram (bin counts over `[hist_lo, hist_hi]`).
    pub hist_counts: Vec<u64>,
    /// Lower edge of the histogram domain.
    pub hist_lo: f64,
    /// Upper edge of the histogram domain.
    pub hist_hi: f64,
}

impl ErrorProfile {
    fn from_errors(errors: &[f64], output_range: f64, bins: usize) -> Self {
        assert!(!errors.is_empty(), "cannot profile zero samples");
        let n = errors.len() as f64;
        let mean = errors.iter().sum::<f64>() / n;
        let var = errors.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        let min = errors.iter().copied().fold(f64::INFINITY, f64::min);
        let max = errors.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Histogram domain: symmetric around the mean, ±4σ (or the observed
        // extremes if wider), with a small floor so exact components get a
        // well-formed single-spike histogram.
        let half = (4.0 * std)
            .max((max - mean).abs())
            .max((mean - min).abs())
            .max(0.5);
        let (hist_lo, hist_hi) = (mean - half, mean + half);
        let mut hist_counts = vec![0u64; bins];
        let width = (hist_hi - hist_lo) / bins as f64;
        for &e in errors {
            let idx = (((e - hist_lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
            hist_counts[idx] += 1;
        }
        ErrorProfile {
            samples: errors.len(),
            mean,
            std,
            min,
            max,
            output_range,
            hist_counts,
            hist_lo,
            hist_hi,
        }
    }

    /// The paper's `NM`/`NA` for this profile (zero range yields zeros).
    pub fn noise_params(&self) -> NoiseParams {
        if self.output_range <= 0.0 {
            return NoiseParams { na: 0.0, nm: 0.0 };
        }
        NoiseParams {
            na: self.mean / self.output_range,
            nm: self.std / self.output_range,
        }
    }

    /// Observed error frequencies per histogram bin.
    pub fn frequencies(&self) -> Vec<f64> {
        let n = self.samples.max(1) as f64;
        self.hist_counts.iter().map(|&c| c as f64 / n).collect()
    }

    /// The center of histogram bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.hist_counts.len());
        let width = (self.hist_hi - self.hist_lo) / self.hist_counts.len() as f64;
        self.hist_lo + width * (i as f64 + 0.5)
    }

    /// Probability mass a Gaussian `N(mean, std)` fitted to this profile
    /// assigns to each histogram bin.
    pub fn gaussian_fit_frequencies(&self) -> Vec<f64> {
        let bins = self.hist_counts.len();
        let width = (self.hist_hi - self.hist_lo) / bins as f64;
        (0..bins)
            .map(|i| {
                let lo = self.hist_lo + width * i as f64;
                let hi = lo + width;
                gaussian_cdf(hi, self.mean, self.std) - gaussian_cdf(lo, self.mean, self.std)
            })
            .collect()
    }

    /// Goodness-of-fit of the Gaussian interpolation: total variation
    /// distance between observed and fitted bin masses, in `[0, 1]`
    /// (0 = perfect fit).
    pub fn gaussian_fit_distance(&self) -> f64 {
        let obs = self.frequencies();
        let fit = self.gaussian_fit_frequencies();
        0.5 * obs
            .iter()
            .zip(&fit)
            .map(|(o, f)| (o - f).abs())
            .sum::<f64>()
    }

    /// The paper's "Gaussian-like" judgement (31 of 35 components qualify):
    /// the fitted Gaussian explains the histogram to within the given total
    /// variation distance.
    pub fn is_gaussian_like(&self, tolerance: f64) -> bool {
        self.gaussian_fit_distance() <= tolerance
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn gaussian_cdf(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 0.0 {
        return if x >= mean { 1.0 } else { 0.0 };
    }
    let z = (x - mean) / (std * std::f64::consts::SQRT_2);
    0.5 * (1.0 + erf(z))
}

/// Abramowitz–Stegun 7.1.26 polynomial erf approximation (|err| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Number of histogram bins used by the profiling functions.
const PROFILE_BINS: usize = 101;

/// Profiles a single multiplication: `Δ = P'(a,b) − P(a,b)` over `samples`
/// input pairs drawn from `dist` (Eq. 2 with a 1-element MAC chain).
pub fn profile_multiplier(
    m: &dyn Multiplier8,
    dist: &InputDistribution,
    samples: usize,
    seed: u64,
) -> ErrorProfile {
    profile_mac_chain(m, 1, dist, samples, seed)
}

/// Profiles a MAC chain of `chain_len` multiply-accumulates: the error of
/// the *accumulated* dot product vs the accurate one. The paper uses chain
/// lengths 1, 9 and 81 to model 3×3 and 9×9 convolution kernels (Fig. 6).
///
/// # Panics
///
/// Panics if `chain_len == 0` or `samples == 0`.
pub fn profile_mac_chain(
    m: &dyn Multiplier8,
    chain_len: usize,
    dist: &InputDistribution,
    samples: usize,
    seed: u64,
) -> ErrorProfile {
    assert!(chain_len > 0, "MAC chain must have at least one element");
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = Vec::with_capacity(samples);
    let mut out_min = f64::INFINITY;
    let mut out_max = f64::NEG_INFINITY;
    for _ in 0..samples {
        let mut acc_accurate: i64 = 0;
        let mut acc_approx: i64 = 0;
        for _ in 0..chain_len {
            let (a, b) = dist.sample(&mut rng);
            acc_accurate += (a as i64) * (b as i64);
            acc_approx += m.multiply(a, b) as i64;
        }
        errors.push((acc_approx - acc_accurate) as f64);
        out_min = out_min.min(acc_accurate as f64);
        out_max = out_max.max(acc_accurate as f64);
    }
    let output_range = (out_max - out_min).max(0.0);
    ErrorProfile::from_errors(&errors, output_range, PROFILE_BINS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mult::{
        ExactMultiplier, MitchellLogMultiplier, PerforatedMultiplier, TruncatedMultiplier,
    };

    #[test]
    fn exact_multiplier_has_zero_error() {
        let p = profile_multiplier(&ExactMultiplier, &InputDistribution::Uniform, 5000, 1);
        assert_eq!(p.mean, 0.0);
        assert_eq!(p.std, 0.0);
        let np = p.noise_params();
        assert_eq!(np.na, 0.0);
        assert_eq!(np.nm, 0.0);
    }

    #[test]
    fn truncated_error_is_negative_mean() {
        let p = profile_multiplier(
            &TruncatedMultiplier::new(6),
            &InputDistribution::Uniform,
            20_000,
            2,
        );
        assert!(p.mean < 0.0, "truncation under-estimates: {}", p.mean);
        assert!(p.std > 0.0);
        assert!(p.max <= 0.0);
    }

    #[test]
    fn nm_scales_with_approximation_aggressiveness() {
        let mild = profile_multiplier(
            &TruncatedMultiplier::new(3),
            &InputDistribution::Uniform,
            20_000,
            3,
        );
        let harsh = profile_multiplier(
            &TruncatedMultiplier::new(8),
            &InputDistribution::Uniform,
            20_000,
            3,
        );
        assert!(harsh.noise_params().nm > mild.noise_params().nm);
    }

    #[test]
    fn mac_chain_grows_error_spread_sublinearly() {
        // Independent-ish per-MAC errors: std grows ~sqrt(n) when mean ~ 0,
        // linearly when biased. Either way 81-chain spread > 9-chain > 1.
        let m = PerforatedMultiplier::new(0, 1);
        let p1 = profile_mac_chain(&m, 1, &InputDistribution::Uniform, 20_000, 4);
        let p9 = profile_mac_chain(&m, 9, &InputDistribution::Uniform, 20_000, 4);
        let p81 = profile_mac_chain(&m, 81, &InputDistribution::Uniform, 20_000, 4);
        assert!(p9.std > p1.std);
        assert!(p81.std > p9.std);
        // Bias accumulates linearly in chain length.
        assert!(
            (p9.mean / p1.mean - 9.0).abs() < 1.5,
            "{}",
            p9.mean / p1.mean
        );
    }

    #[test]
    fn mac_chain_of_exact_is_exact() {
        let p = profile_mac_chain(&ExactMultiplier, 81, &InputDistribution::Uniform, 2000, 5);
        assert_eq!(p.std, 0.0);
        assert_eq!(p.mean, 0.0);
    }

    #[test]
    fn accumulated_error_becomes_gaussian_like() {
        // Central limit theorem: the 81-MAC error of a mildly approximate
        // component fits a Gaussian well (the paper's Fig. 6 observation).
        let m = TruncatedMultiplier::new(6);
        let p81 = profile_mac_chain(&m, 81, &InputDistribution::Uniform, 30_000, 6);
        assert!(
            p81.is_gaussian_like(0.08),
            "fit distance {}",
            p81.gaussian_fit_distance()
        );
    }

    #[test]
    fn single_mult_error_of_structured_design_is_less_gaussian() {
        // A single Mitchell multiplication has a skewed, clearly
        // non-Gaussian error; accumulation regularizes it.
        let m = MitchellLogMultiplier::new();
        let p1 = profile_mac_chain(&m, 1, &InputDistribution::Uniform, 30_000, 7);
        let p81 = profile_mac_chain(&m, 81, &InputDistribution::Uniform, 30_000, 7);
        assert!(p81.gaussian_fit_distance() < p1.gaussian_fit_distance());
    }

    #[test]
    fn empirical_distribution_changes_noise_params() {
        // Small-valued operands (like normalized activations) shrink the
        // absolute error of truncation-family designs.
        let m = TruncatedMultiplier::new(7);
        let uniform = profile_multiplier(&m, &InputDistribution::Uniform, 20_000, 8);
        let small_ops = InputDistribution::Empirical {
            activations: (0..64u8).collect(),
            weights: (0..64u8).collect(),
        };
        let real = profile_multiplier(&m, &small_ops, 20_000, 8);
        assert_ne!(uniform.noise_params().nm, real.noise_params().nm);
    }

    #[test]
    fn profile_is_deterministic_in_seed() {
        let m = TruncatedMultiplier::new(5);
        let a = profile_multiplier(&m, &InputDistribution::Uniform, 5000, 42);
        let b = profile_multiplier(&m, &InputDistribution::Uniform, 5000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_accounts_for_all_samples() {
        let m = TruncatedMultiplier::new(5);
        let p = profile_multiplier(&m, &InputDistribution::Uniform, 7777, 9);
        assert_eq!(p.hist_counts.iter().sum::<u64>(), 7777);
        assert_eq!(p.samples, 7777);
    }

    #[test]
    fn bin_centers_span_domain() {
        let m = TruncatedMultiplier::new(5);
        let p = profile_multiplier(&m, &InputDistribution::Uniform, 1000, 10);
        assert!(p.bin_center(0) > p.hist_lo);
        let last = p.hist_counts.len() - 1;
        assert!(p.bin_center(last) < p.hist_hi);
        assert!(p.bin_center(0) < p.bin_center(last));
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-5);
    }

    #[test]
    fn gaussian_cdf_monotone() {
        let mut prev = -1.0;
        for i in -40..=40 {
            let v = gaussian_cdf(i as f64 / 10.0, 0.0, 1.0);
            assert!(v >= prev);
            prev = v;
        }
        assert!((gaussian_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_chain_rejected() {
        profile_mac_chain(&ExactMultiplier, 0, &InputDistribution::Uniform, 10, 0);
    }
}
