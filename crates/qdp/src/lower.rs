//! The architecture-generic lowering pipeline: calibrated quantization
//! ranges keyed by site, and a trait each float layer implements to
//! lower itself onto the quantized datapath.
//!
//! [`QuantRanges`] replaces per-architecture range structs: it is a map
//! from `(layer name, operation kind, in-routing?)` — the same key the
//! [`CalibrationObserver`](crate::CalibrationObserver) tracks — to the
//! [`QuantParams`] fixed at calibration time. Any model driven through
//! the injection tap points produces one, so lowering a new
//! architecture needs **no** new calibration code.
//!
//! [`LowerToQuant`] is the per-layer half: `Dense`, `Conv2d`,
//! `ConvCaps2d`, `ConvCaps3d` and `ClassCaps` each lower themselves to
//! their `Q*` counterpart, pulling the ranges they need from the map
//! and failing with a clear [`LowerError::MissingRange`] when a site
//! was never calibrated.

use std::collections::BTreeMap;

use redcane_capsnet::inject::OpKind;
use redcane_capsnet::layers::{ClassCaps, ConvCaps2d, ConvCaps3d};
use redcane_capsnet::CapsModel;
use redcane_fxp::{FxpError, QuantParams};
use redcane_nn::layers::{Conv2d, Dense};
use redcane_tensor::Tensor;

use crate::calib::CalibrationObserver;
use crate::qlayers::{QClassCaps, QConv2d, QConvCaps2d, QConvCaps3d, QDense};

/// Why lowering a model (or a layer) onto the quantized datapath
/// failed.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// A requantization range needed by a layer was never calibrated —
    /// the calibration sweep did not visit this site.
    MissingRange {
        /// Layer whose site is missing.
        layer: String,
        /// Operation kind of the missing site.
        kind: OpKind,
        /// Whether the site lies inside dynamic routing.
        in_routing: bool,
    },
    /// A layer's weights could not be quantized (non-finite values) or
    /// an observed range was invalid.
    Quantization {
        /// Layer being lowered when the error occurred.
        layer: String,
        /// The underlying fixed-point error.
        source: FxpError,
    },
    /// The calibration sweep observed no sites at all (no images, or a
    /// model without tap points).
    EmptyCalibration,
    /// The concrete model type has no registered lowering (see
    /// [`QModel::lower`](crate::QModel::lower)).
    UnsupportedArchitecture {
        /// The model's display name.
        model: String,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::MissingRange {
                layer,
                kind,
                in_routing,
            } => write!(
                f,
                "no calibrated quantization range for site ({layer}, {kind}{}): \
                 sweep calibration inputs through the model before lowering",
                if *in_routing { ", in routing" } else { "" }
            ),
            LowerError::Quantization { layer, source } => {
                write!(f, "cannot quantize layer {layer}: {source}")
            }
            LowerError::EmptyCalibration => {
                write!(f, "calibration observed no sites (no images swept?)")
            }
            LowerError::UnsupportedArchitecture { model } => write!(
                f,
                "no quantized lowering registered for architecture {model}"
            ),
        }
    }
}

impl std::error::Error for LowerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LowerError::Quantization { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Calibrated activation-quantization ranges for **any** model, keyed
/// generically by `(layer name, operation kind, in-routing?)` — one
/// entry per requantization point the calibration sweep observed.
///
/// Produced by [`CalibrationObserver::ranges`] (or assembled manually
/// with [`QuantRanges::insert`] for tests and synthetic datapaths).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantRanges {
    // A BTreeMap so iteration never depends on hasher state (lint rule
    // R1): these ranges reach the byte-compared artifact JSON.
    sites: BTreeMap<(String, OpKind, bool), QuantParams>,
}

impl QuantRanges {
    /// An empty range map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the range for one site.
    pub fn insert(&mut self, layer: &str, kind: OpKind, in_routing: bool, params: QuantParams) {
        self.sites
            .insert((layer.to_string(), kind, in_routing), params);
    }

    /// The range for a non-routing site, if calibrated.
    pub fn get(&self, layer: &str, kind: OpKind) -> Option<QuantParams> {
        self.sites.get(&(layer.to_string(), kind, false)).copied()
    }

    /// The range for a site inside dynamic routing (merged across
    /// iterations), if calibrated.
    pub fn get_routing(&self, layer: &str, kind: OpKind) -> Option<QuantParams> {
        self.sites.get(&(layer.to_string(), kind, true)).copied()
    }

    /// The range for a non-routing site, or a clear
    /// [`LowerError::MissingRange`].
    ///
    /// # Errors
    ///
    /// Returns [`LowerError::MissingRange`] naming the site when it was
    /// never calibrated.
    pub fn require(&self, layer: &str, kind: OpKind) -> Result<QuantParams, LowerError> {
        self.get(layer, kind)
            .ok_or_else(|| LowerError::MissingRange {
                layer: layer.to_string(),
                kind,
                in_routing: false,
            })
    }

    /// The range for an in-routing site, or a clear
    /// [`LowerError::MissingRange`].
    ///
    /// # Errors
    ///
    /// As [`QuantRanges::require`].
    pub fn require_routing(&self, layer: &str, kind: OpKind) -> Result<QuantParams, LowerError> {
        self.get_routing(layer, kind)
            .ok_or_else(|| LowerError::MissingRange {
                layer: layer.to_string(),
                kind,
                in_routing: true,
            })
    }

    /// Number of calibrated sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when no site has been calibrated.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// All calibrated sites in a deterministic order (sorted by layer
    /// name, kind label, then routing flag).
    pub fn sites_sorted(&self) -> Vec<(&str, OpKind, bool, QuantParams)> {
        let mut out: Vec<_> = self
            .sites
            .iter()
            .map(|((layer, kind, routing), p)| (layer.as_str(), *kind, *routing, *p))
            .collect();
        out.sort_by(|a, b| (a.0, a.1.label(), a.2).cmp(&(b.0, b.1.label(), b.2)));
        out
    }

    /// Converts to the artifact store's portable rows, in the
    /// deterministic [`QuantRanges::sites_sorted`] order.
    pub fn to_entries(&self) -> Vec<redcane_artifacts::RangeEntry> {
        self.sites_sorted()
            .into_iter()
            .map(
                |(layer, kind, in_routing, params)| redcane_artifacts::RangeEntry {
                    layer: layer.to_string(),
                    kind,
                    in_routing,
                    params,
                },
            )
            .collect()
    }

    /// Rebuilds a range map from artifact-store rows. Exact inverse of
    /// [`QuantRanges::to_entries`]: `QuantParams` round-trips through
    /// its `(min, max, bits)` triple bit for bit.
    pub fn from_entries(entries: &[redcane_artifacts::RangeEntry]) -> Self {
        let mut out = QuantRanges::new();
        for e in entries {
            out.insert(&e.layer, e.kind, e.in_routing, e.params);
        }
        out
    }
}

/// Sweeps `images` through `model` with a [`CalibrationObserver`]
/// riding the injection tap points and returns every observed site's
/// quantization range — the generic replacement for per-architecture
/// calibration functions.
///
/// # Errors
///
/// Returns [`LowerError::EmptyCalibration`] if no site was observed
/// (empty `images`), or [`LowerError::Quantization`] if a tapped
/// tensor contained only non-finite values.
pub fn calibrate_ranges<'a>(
    model: &mut dyn CapsModel,
    images: impl IntoIterator<Item = &'a Tensor>,
) -> Result<QuantRanges, LowerError> {
    let mut obs = CalibrationObserver::new();
    for image in images {
        let _ = model.forward(image, &mut obs);
    }
    obs.ranges(8)
}

/// A float layer that can lower itself onto the quantized datapath.
///
/// `layer` is the site name the model's injector taps use for this
/// layer (self-naming layers pass their own `name()`); implementations
/// pull every range they need from `ranges` and fail with a
/// [`LowerError::MissingRange`] naming the first absent site.
pub trait LowerToQuant {
    /// The quantized counterpart this layer lowers to.
    type Quantized;

    /// Lowers the trained float layer onto the quantized datapath.
    ///
    /// # Errors
    ///
    /// [`LowerError::MissingRange`] when a needed site was never
    /// calibrated; [`LowerError::Quantization`] when the weights
    /// contain non-finite values.
    fn lower_to_quant(
        &self,
        layer: &str,
        ranges: &QuantRanges,
    ) -> Result<Self::Quantized, LowerError>;
}

fn quant_err(layer: &str) -> impl FnOnce(FxpError) -> LowerError + '_ {
    move |source| LowerError::Quantization {
        layer: layer.to_string(),
        source,
    }
}

impl LowerToQuant for Dense {
    type Quantized = QDense;

    fn lower_to_quant(
        &self,
        layer: &str,
        ranges: &QuantRanges,
    ) -> Result<Self::Quantized, LowerError> {
        let in_params = ranges.require(layer, OpKind::MacInput)?;
        QDense::from_dense(self, in_params).map_err(quant_err(layer))
    }
}

impl LowerToQuant for Conv2d {
    type Quantized = QConv2d;

    fn lower_to_quant(
        &self,
        layer: &str,
        ranges: &QuantRanges,
    ) -> Result<Self::Quantized, LowerError> {
        let in_params = ranges.require(layer, OpKind::MacInput)?;
        QConv2d::from_conv(self, in_params).map_err(quant_err(layer))
    }
}

impl LowerToQuant for ConvCaps2d {
    type Quantized = QConvCaps2d;

    fn lower_to_quant(
        &self,
        layer: &str,
        ranges: &QuantRanges,
    ) -> Result<Self::Quantized, LowerError> {
        let in_params = ranges.require(layer, OpKind::MacInput)?;
        QConvCaps2d::from_conv_caps(self, in_params).map_err(quant_err(layer))
    }
}

impl LowerToQuant for ConvCaps3d {
    type Quantized = QConvCaps3d;

    fn lower_to_quant(
        &self,
        layer: &str,
        ranges: &QuantRanges,
    ) -> Result<Self::Quantized, LowerError> {
        let in_params = ranges.require(layer, OpKind::MacInput)?;
        // The non-routing MacOutput tap is the vote tensor itself; the
        // in-routing MacOutput taps (the weighted sums, up to I× wider)
        // must not dilate the vote codes.
        let vote_params = ranges.require(layer, OpKind::MacOutput)?;
        let coupling_params = ranges.require_routing(layer, OpKind::Softmax)?;
        let act_params = ranges.require_routing(layer, OpKind::Activation)?;
        QConvCaps3d::from_conv_caps(self, in_params, vote_params, coupling_params, act_params)
            .map_err(quant_err(layer))
    }
}

impl LowerToQuant for ClassCaps {
    type Quantized = QClassCaps;

    fn lower_to_quant(
        &self,
        layer: &str,
        ranges: &QuantRanges,
    ) -> Result<Self::Quantized, LowerError> {
        let in_params = ranges.require(layer, OpKind::MacInput)?;
        let vote_params = ranges.require(layer, OpKind::MacOutput)?;
        let coupling_params = ranges.require_routing(layer, OpKind::Softmax)?;
        let act_params = ranges.require_routing(layer, OpKind::Activation)?;
        QClassCaps::from_class_caps(self, in_params, vote_params, coupling_params, act_params)
            .map_err(quant_err(layer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_tensor::TensorRng;

    fn p(min: f32, max: f32) -> QuantParams {
        QuantParams::from_range(min, max, 8).unwrap()
    }

    #[test]
    fn ranges_round_trip_through_artifact_entries() {
        let mut r = QuantRanges::new();
        r.insert("Conv1", OpKind::MacOutput, false, p(-1.5, 2.5));
        r.insert("ClassCaps", OpKind::Softmax, true, p(0.0, 1.0));
        r.insert("ClassCaps", OpKind::LogitsUpdate, true, p(-8.0, 8.0));
        let entries = r.to_entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(QuantRanges::from_entries(&entries), r);
    }

    #[test]
    fn ranges_round_trip_and_distinguish_routing() {
        let mut r = QuantRanges::new();
        r.insert("L", OpKind::MacOutput, false, p(-1.0, 1.0));
        r.insert("L", OpKind::MacOutput, true, p(-40.0, 40.0));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("L", OpKind::MacOutput).unwrap().max(), 1.0);
        assert_eq!(r.get_routing("L", OpKind::MacOutput).unwrap().max(), 40.0);
        assert!(r.get("M", OpKind::MacOutput).is_none());
    }

    #[test]
    fn missing_range_error_names_the_site() {
        let r = QuantRanges::new();
        let err = r.require("Conv1", OpKind::MacInput).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Conv1"), "{msg}");
        assert!(msg.contains("MAC inputs"), "{msg}");
        let err = r.require_routing("ClassCaps", OpKind::Softmax).unwrap_err();
        assert!(err.to_string().contains("in routing"));
    }

    #[test]
    fn dense_lowering_fails_without_calibration() {
        let mut rng = TensorRng::from_seed(600);
        let dense = Dense::new(4, 2, &mut rng);
        let err = dense.lower_to_quant("FC", &QuantRanges::new()).unwrap_err();
        assert!(matches!(err, LowerError::MissingRange { ref layer, .. } if layer == "FC"));
    }

    #[test]
    fn dense_lowering_succeeds_with_its_site() {
        let mut rng = TensorRng::from_seed(601);
        let dense = Dense::new(4, 2, &mut rng);
        let mut r = QuantRanges::new();
        r.insert("FC", OpKind::MacInput, false, p(-1.0, 1.0));
        assert!(dense.lower_to_quant("FC", &r).is_ok());
    }

    #[test]
    fn class_caps_lowering_reports_first_missing_routing_site() {
        let mut rng = TensorRng::from_seed(602);
        let layer = ClassCaps::new(0, "CC", 4, 3, 3, 3, 2, &mut rng);
        let mut r = QuantRanges::new();
        r.insert("CC", OpKind::MacInput, false, p(-1.0, 1.0));
        r.insert("CC", OpKind::MacOutput, false, p(-1.0, 1.0));
        let err = layer.lower_to_quant("CC", &r).unwrap_err();
        assert_eq!(
            err,
            LowerError::MissingRange {
                layer: "CC".into(),
                kind: OpKind::Softmax,
                in_routing: true,
            }
        );
    }

    #[test]
    fn sites_sorted_is_deterministic() {
        let mut r = QuantRanges::new();
        r.insert("B", OpKind::MacInput, false, p(0.0, 1.0));
        r.insert("A", OpKind::Softmax, true, p(0.0, 1.0));
        r.insert("A", OpKind::MacInput, false, p(0.0, 1.0));
        let order: Vec<_> = r
            .sites_sorted()
            .iter()
            .map(|s| (s.0.to_string(), s.2))
            .collect();
        assert_eq!(order[0].0, "A");
        assert_eq!(order.last().unwrap().0, "B");
    }
}
