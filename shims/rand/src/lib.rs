//! Offline shim for `rand` 0.8.
//!
//! Implements the exact API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` — on
//! top of xoshiro256** seeded through splitmix64. The stream differs
//! from the real `StdRng` (ChaCha12), which is fine: every consumer in
//! the workspace only requires determinism from an explicit seed, never
//! a particular stream.

use std::ops::{Range, RangeInclusive};

/// Types constructible from an RNG; the shim's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// The raw 64-bit generator contract.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Explicitly seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator; the shim's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f32_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
