//! Eq. 1 quantization: affine mapping between floats and `b`-bit codes.

use redcane_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::FxpError;

/// Widens a degenerate observed range (`max <= min`, i.e. a constant
/// value) so the affine mapping of Eq. 1 is defined.
///
/// The pad scales with the value's magnitude: a fixed epsilon (the old
/// ±0.5) disappears under f32 rounding once `|v|` exceeds ~2²³·ε, which
/// made calibration fail on real layers whose activations are constant
/// at a large scale. The loop doubles the pad until the widened bounds
/// are actually distinct after rounding.
pub(crate) fn widen_degenerate(min: f32, max: f32) -> (f32, f32) {
    debug_assert!(min.is_finite() && max.is_finite());
    let mut pad = 0.5f32.max(min.abs().max(max.abs()) * 1e-6);
    let (mut lo, mut hi) = (min - pad, max + pad);
    while hi <= lo && pad.is_finite() {
        pad *= 2.0;
        lo = min - pad;
        hi = max + pad;
    }
    // Saturate instead of handing a non-finite bound to `from_range`.
    if !lo.is_finite() {
        lo = f32::MIN;
    }
    if !hi.is_finite() {
        hi = f32::MAX;
    }
    (lo, hi)
}

/// Affine quantization parameters implementing Eq. 1 of the paper:
/// `Q(x) = (x - min) / (max - min) * (2^b - 1)`.
///
/// Codes are `u16` (the library's components are at most 8-bit inputs with
/// 16-bit products).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    min: f32,
    max: f32,
    bits: u8,
}

impl QuantParams {
    /// Creates parameters from an explicit value range.
    ///
    /// # Errors
    ///
    /// Returns [`FxpError::InvalidRange`] if the range is degenerate or
    /// non-finite, or [`FxpError::UnsupportedWordLength`] for `bits`
    /// outside `1..=16`.
    pub fn from_range(min: f32, max: f32, bits: u8) -> Result<Self, FxpError> {
        if !(1..=16).contains(&bits) {
            return Err(FxpError::UnsupportedWordLength { bits });
        }
        if !min.is_finite() || !max.is_finite() || max <= min {
            return Err(FxpError::InvalidRange { min, max });
        }
        Ok(QuantParams { min, max, bits })
    }

    /// Calibrates parameters from the observed min/max of a tensor.
    ///
    /// A constant tensor is widened by an epsilon so the range is valid.
    ///
    /// # Errors
    ///
    /// Returns [`FxpError::UnsupportedWordLength`] for an invalid `bits`.
    pub fn calibrate(tensor: &Tensor, bits: u8) -> Result<Self, FxpError> {
        let mut min = tensor.min_value();
        let mut max = tensor.max_value();
        if !min.is_finite() || !max.is_finite() {
            return Err(FxpError::InvalidRange { min, max });
        }
        if max <= min {
            // Constant tensor: widen so quantization is defined (the pad
            // scales with magnitude so it survives f32 rounding).
            (min, max) = widen_degenerate(min, max);
        }
        Self::from_range(min, max, bits)
    }

    /// The word length in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Lower edge of the representable range.
    pub fn min(&self) -> f32 {
        self.min
    }

    /// Upper edge of the representable range.
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Largest representable code: `2^bits - 1`.
    pub fn max_code(&self) -> u16 {
        ((1u32 << self.bits) - 1) as u16
    }

    /// The value step between adjacent codes (one LSB).
    pub fn lsb(&self) -> f32 {
        (self.max - self.min) / self.max_code() as f32
    }

    /// Quantizes a value to its nearest code, saturating at the range edges
    /// (Eq. 1).
    pub fn quantize(&self, x: f32) -> u16 {
        let scaled = (x - self.min) / (self.max - self.min) * self.max_code() as f32;
        scaled.round().clamp(0.0, self.max_code() as f32) as u16
    }

    /// Reconstructs the value at the center of `code`'s quantization cell.
    pub fn dequantize(&self, code: u16) -> f32 {
        self.min + (self.max - self.min) * code as f32 / self.max_code() as f32
    }

    /// Quantizes then dequantizes, i.e. simulates the precision loss of
    /// running this value through the fixed-point datapath.
    pub fn round_trip(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }
}

/// A tensor quantized to `b`-bit codes together with its reconstruction
/// parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    /// Flat row-major codes.
    pub codes: Vec<u16>,
    /// Original tensor shape.
    pub shape: Vec<usize>,
    /// The affine mapping used.
    pub params: QuantParams,
}

impl QuantizedTensor {
    /// Reconstructs the floating-point tensor (with quantization error).
    pub fn dequantize(&self) -> Tensor {
        let data: Vec<f32> = self
            .codes
            .iter()
            .map(|&c| self.params.dequantize(c))
            .collect();
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(data, &self.shape).expect("codes sized to shape")
    }
}

/// Tensor-level quantization front-end.
///
/// # Example
///
/// ```
/// use redcane_fxp::Quantizer;
/// use redcane_tensor::Tensor;
///
/// # fn main() -> Result<(), redcane_fxp::FxpError> {
/// let t = Tensor::from_slice(&[-1.0, 0.0, 1.0]);
/// let q = Quantizer::new(8).quantize_calibrated(&t)?;
/// let back = q.dequantize();
/// for (a, b) in t.data().iter().zip(back.data()) {
///     assert!((a - b).abs() < 0.005);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    bits: u8,
}

impl Quantizer {
    /// Creates a quantizer for `bits`-wide codes.
    pub fn new(bits: u8) -> Self {
        Quantizer { bits }
    }

    /// The configured word length.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Quantizes a tensor using its own min/max as the range (per-tensor
    /// calibration, as the paper does per-array).
    ///
    /// # Errors
    ///
    /// Returns an error for an unsupported word length or non-finite data.
    pub fn quantize_calibrated(&self, tensor: &Tensor) -> Result<QuantizedTensor, FxpError> {
        let params = QuantParams::calibrate(tensor, self.bits)?;
        Ok(self.quantize_with(tensor, params))
    }

    /// Quantizes a tensor with externally supplied parameters (e.g. from a
    /// [`RangeTracker`](crate::RangeTracker) calibration pass).
    pub fn quantize_with(&self, tensor: &Tensor, params: QuantParams) -> QuantizedTensor {
        QuantizedTensor {
            codes: tensor.data().iter().map(|&v| params.quantize(v)).collect(),
            shape: tensor.shape().to_vec(),
            params,
        }
    }

    /// Simulates the fixed-point datapath: quantize + dequantize in place.
    ///
    /// # Errors
    ///
    /// Returns an error for an unsupported word length or non-finite data.
    pub fn round_trip(&self, tensor: &Tensor) -> Result<Tensor, FxpError> {
        Ok(self.quantize_calibrated(tensor)?.dequantize())
    }
}

impl Default for Quantizer {
    /// 8-bit, matching the paper's accelerator word length.
    fn default() -> Self {
        Quantizer::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(QuantParams::from_range(0.0, 1.0, 0).is_err());
        assert!(QuantParams::from_range(0.0, 1.0, 17).is_err());
        assert!(QuantParams::from_range(1.0, 1.0, 8).is_err());
        assert!(QuantParams::from_range(2.0, 1.0, 8).is_err());
        assert!(QuantParams::from_range(f32::NAN, 1.0, 8).is_err());
        assert!(QuantParams::from_range(0.0, 1.0, 8).is_ok());
    }

    #[test]
    fn edges_map_to_extreme_codes() {
        let q = QuantParams::from_range(-2.0, 2.0, 8).unwrap();
        assert_eq!(q.quantize(-2.0), 0);
        assert_eq!(q.quantize(2.0), 255);
        assert_eq!(q.max_code(), 255);
    }

    #[test]
    fn quantize_saturates_out_of_range() {
        let q = QuantParams::from_range(0.0, 1.0, 8).unwrap();
        assert_eq!(q.quantize(-5.0), 0);
        assert_eq!(q.quantize(5.0), 255);
    }

    #[test]
    fn round_trip_error_bounded_by_half_lsb() {
        let q = QuantParams::from_range(-1.0, 1.0, 8).unwrap();
        let half_lsb = q.lsb() / 2.0;
        for i in 0..1000 {
            let x = -1.0 + 2.0 * i as f32 / 999.0;
            let err = (q.round_trip(x) - x).abs();
            assert!(err <= half_lsb + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn dequantize_is_monotone_in_code() {
        let q = QuantParams::from_range(0.0, 10.0, 4).unwrap();
        let mut prev = f32::NEG_INFINITY;
        for code in 0..=q.max_code() {
            let v = q.dequantize(code);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn fewer_bits_coarser_lsb() {
        let q8 = QuantParams::from_range(0.0, 1.0, 8).unwrap();
        let q4 = QuantParams::from_range(0.0, 1.0, 4).unwrap();
        assert!(q4.lsb() > q8.lsb());
    }

    #[test]
    fn calibrate_constant_tensor_widens_range() {
        let t = Tensor::full(&[5], 3.0);
        let q = QuantParams::calibrate(&t, 8).unwrap();
        assert!(q.min() < 3.0 && q.max() > 3.0);
        assert!((q.round_trip(3.0) - 3.0).abs() < q.lsb());
    }

    #[test]
    fn calibrate_large_magnitude_constant_still_widens() {
        // A fixed ±0.5 pad rounds away at this scale (ULP(3e8) = 32);
        // the magnitude-aware pad must keep the range valid.
        for &v in &[3.0e8f32, -3.0e8, 1.0e30, f32::MAX] {
            let t = Tensor::full(&[4], v);
            let q = QuantParams::calibrate(&t, 8)
                .unwrap_or_else(|e| panic!("calibrate({v}) failed: {e:?}"));
            assert!(q.min() < q.max(), "widened range at {v}");
            let rel = ((q.round_trip(v) - v) / v).abs();
            assert!(rel < 1e-2, "round trip at {v}: rel {rel}");
        }
    }

    #[test]
    fn quantizer_tensor_round_trip() {
        let t = Tensor::from_slice(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        let q = Quantizer::new(8);
        let rt = q.round_trip(&t).unwrap();
        for (a, b) in t.data().iter().zip(rt.data()) {
            assert!((a - b).abs() < 0.01);
        }
    }

    #[test]
    fn quantized_tensor_keeps_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        let q = Quantizer::default().quantize_calibrated(&t).unwrap();
        assert_eq!(q.shape, vec![2, 3, 4]);
        assert_eq!(q.dequantize().shape(), &[2, 3, 4]);
    }

    #[test]
    fn default_quantizer_is_8_bit() {
        assert_eq!(Quantizer::default().bits(), 8);
    }
}
