//! The measured half of the paper's validation loop:
//! [`QuantMeasured`], an [`AccuracyBackend`] that scores a datapath
//! assignment by *running* it — every MAC multiply through the
//! assigned components' behavioral models on the 8-bit integer
//! kernels — instead of forecasting it from noise statistics.
//!
//! Construction does the expensive, assignment-independent work once:
//! calibrate, lower the model into a [`QModel`] program, and tabulate
//! the component LUTs. `evaluate` then just resolves an assignment
//! against the cached tables and runs batched quantized inference, so
//! sweeping many assignments (uniform per-component rows, the Step-6
//! heterogeneous design) over one trained model shares all of the
//! lowering.

use redcane::datapath::{AccuracyBackend, BackendError, DatapathAssignment};
use redcane_axmul::{LutCache, MultiplierLibrary};
use redcane_capsnet::CapsModel;
use redcane_datasets::Dataset;
use redcane_tensor::Tensor;

use crate::lower::{calibrate_ranges, LowerError, QuantRanges};
use crate::qmodel::{evaluate_quantized, QModel};

/// Ground-truth accuracy backend: lower once, then run any
/// [`DatapathAssignment`] on the quantized integer datapath.
#[derive(Debug, Clone)]
pub struct QuantMeasured {
    qmodel: QModel,
    luts: LutCache,
}

impl QuantMeasured {
    /// Wraps an already-lowered program and a LUT cache.
    pub fn new(qmodel: QModel, luts: LutCache) -> Self {
        QuantMeasured { qmodel, luts }
    }

    /// Lowers `model` with pre-computed calibration ranges and
    /// tabulates every component of `library` (one 64 KiB table each),
    /// so any assignment over that library resolves.
    ///
    /// # Errors
    ///
    /// As [`QModel::lower`].
    pub fn from_ranges(
        model: &dyn CapsModel,
        ranges: &QuantRanges,
        library: &MultiplierLibrary,
    ) -> Result<Self, LowerError> {
        Ok(QuantMeasured {
            qmodel: QModel::lower(model, ranges)?,
            luts: LutCache::tabulate_all(library),
        })
    }

    /// Calibrates on `images`, lowers, and tabulates `library` in one
    /// step.
    ///
    /// # Errors
    ///
    /// As [`QModel::calibrated`].
    pub fn calibrated<'a>(
        model: &mut dyn CapsModel,
        images: impl IntoIterator<Item = &'a Tensor>,
        library: &MultiplierLibrary,
    ) -> Result<Self, LowerError> {
        let ranges = calibrate_ranges(model, images)?;
        Self::from_ranges(&*model, &ranges, library)
    }

    /// The lowered quantized program.
    pub fn qmodel(&self) -> &QModel {
        &self.qmodel
    }

    /// The shared component tables.
    pub fn luts(&self) -> &LutCache {
        &self.luts
    }
}

impl AccuracyBackend for QuantMeasured {
    fn name(&self) -> &'static str {
        "quant-measured"
    }

    fn evaluate<M: CapsModel + Clone + Send + Sync>(
        &self,
        model: &M,
        data: &Dataset,
        assignment: &DatapathAssignment,
    ) -> Result<f64, BackendError> {
        // The program was lowered from a specific trained model; the
        // trait hands the model back in, so guard against scoring a
        // different network with another network's weights. The guard
        // compares display names — architecture + config, not weight
        // identity — so a same-config model with different weights
        // would pass: keep the backend paired with the exact model it
        // was calibrated from.
        let got = model.name();
        if got != self.qmodel.arch() {
            return Err(BackendError::ModelMismatch {
                expected: self.qmodel.arch().to_string(),
                got,
            });
        }
        evaluate_quantized(&self.qmodel, data, assignment, &self.luts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::{evaluate_clean, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig};
    use redcane_datasets::{generate, Benchmark, GenerateConfig};
    use redcane_tensor::TensorRng;

    #[test]
    fn measured_backend_scores_uniform_and_rejects_wrong_model() {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 8,
                test: 10,
                seed: 31,
            },
        );
        let mut rng = TensorRng::from_seed(910);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let library = MultiplierLibrary::evo_approx_like();
        let backend = QuantMeasured::calibrated(
            &mut model,
            pair.train.samples.iter().map(|s| &s.image),
            &library,
        )
        .unwrap();
        assert_eq!(backend.name(), "quant-measured");
        assert_eq!(backend.luts().len(), library.len());

        let exact = DatapathAssignment::uniform("mul8u_1JFF");
        let acc = backend.evaluate(&model, &pair.test, &exact).unwrap();
        // Untrained model, but the measured accuracy is a valid rate
        // and deterministic.
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(acc, backend.evaluate(&model, &pair.test, &exact).unwrap());
        // The exact uniform datapath tracks the float model closely.
        let float_acc = evaluate_clean(&model, &pair.test);
        assert!((acc - float_acc).abs() <= 0.2, "{acc} vs float {float_acc}");

        // A different architecture is rejected, not silently mis-scored.
        let mut rng = TensorRng::from_seed(911);
        let other = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
        let err = backend.evaluate(&other, &pair.test, &exact).unwrap_err();
        assert!(matches!(err, BackendError::ModelMismatch { .. }), "{err}");
    }
}
