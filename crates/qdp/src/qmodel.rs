//! Quantized forward paths: `Dense`, `Conv2d`, capsule votes and the
//! routing MACs, wired into an end-to-end quantized CapsNet.
//!
//! Every multiply in these paths goes through a [`MulLut`] — i.e.
//! through a behavioral model of a real 8-bit (possibly approximate)
//! multiplier — while everything an accelerator computes exactly
//! (code sums for the zero-point correction, bias adds, the squash /
//! softmax special-function units) stays in float. Activations are
//! requantized between layers with ranges fixed at calibration time,
//! so the datapath is input-independent like the hardware it models.

use redcane_capsnet::squash::squash_caps;
use redcane_capsnet::{CapsModel, CapsNet, CapsNetConfig};
use redcane_fxp::{FxpError, QuantParams};
use redcane_nn::layers::{Conv2d, Dense};
use redcane_tensor::ops::conv::im2col_slice;
use redcane_tensor::ops::Conv2dSpec;
use redcane_tensor::Tensor;

use redcane_capsnet::inject::OpKind;
use redcane_capsnet::layers::ClassCaps;
use redcane_datasets::Dataset;

use crate::calib::CalibrationObserver;
use crate::kernels::{affine_dequant, col_sums, qgemm_nn, row_sums};
use crate::lut::MulLut;
use crate::qtensor::quantize_codes;

/// Matches the squash epsilon of `redcane_capsnet::squash`.
const EPS: f32 = 1e-8;

// ------------------------------------------------------------- QDense

/// A [`Dense`] layer running its MAC through the quantized datapath.
#[derive(Debug, Clone)]
pub struct QDense {
    qweight: Vec<u8>,
    wparams: QuantParams,
    wrowsums: Vec<u32>,
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
    in_params: QuantParams,
}

impl QDense {
    /// Quantizes a trained dense layer's weights (per-tensor range) and
    /// fixes the input quantization to `in_params`.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights contain non-finite values.
    pub fn from_dense(layer: &Dense, in_params: QuantParams) -> Result<Self, FxpError> {
        let wparams = QuantParams::calibrate(layer.weight(), 8)?;
        let qweight = quantize_codes(layer.weight().data(), wparams);
        let wrowsums = row_sums(&qweight, layer.out_dim(), layer.in_dim());
        Ok(QDense {
            qweight,
            wparams,
            wrowsums,
            bias: layer.bias().data().to_vec(),
            in_dim: layer.in_dim(),
            out_dim: layer.out_dim(),
            in_params,
        })
    }

    /// `y = W·x + b` with the multiplies served by `lut`.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not flatten to `in_dim` elements.
    pub fn forward(&self, x: &Tensor, lut: &MulLut) -> Tensor {
        assert_eq!(x.len(), self.in_dim, "QDense input size");
        let qx = quantize_codes(x.data(), self.in_params);
        let mut acc = vec![0u32; self.out_dim];
        qgemm_nn(
            &self.qweight,
            &qx,
            &mut acc,
            self.out_dim,
            self.in_dim,
            1,
            lut,
        );
        let cs = col_sums(&qx, self.in_dim, 1);
        let mut out = vec![0.0f32; self.out_dim];
        affine_dequant(
            &acc,
            &self.wrowsums,
            &cs,
            self.in_dim,
            self.wparams,
            self.in_params,
            &mut out,
        );
        for (o, &b) in out.iter_mut().zip(&self.bias) {
            *o += b;
        }
        Tensor::from_vec(out, &[self.out_dim]).expect("dense output")
    }
}

// ------------------------------------------------------------ QConv2d

/// A [`Conv2d`] layer running its im2col GEMM through the quantized
/// datapath.
#[derive(Debug, Clone)]
pub struct QConv2d {
    qweight: Vec<u8>,
    wparams: QuantParams,
    wrowsums: Vec<u32>,
    bias: Vec<f32>,
    spec: Conv2dSpec,
    c_in: usize,
    c_out: usize,
    in_params: QuantParams,
}

impl QConv2d {
    /// Quantizes a trained convolution's weights (per-tensor range) and
    /// fixes the input quantization to `in_params`.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights contain non-finite values.
    pub fn from_conv(conv: &Conv2d, in_params: QuantParams) -> Result<Self, FxpError> {
        let wparams = QuantParams::calibrate(conv.weight(), 8)?;
        let qweight = quantize_codes(conv.weight().data(), wparams);
        let spec = conv.spec();
        let k2 = conv.c_in() * spec.kernel * spec.kernel;
        let wrowsums = row_sums(&qweight, conv.c_out(), k2);
        Ok(QConv2d {
            qweight,
            wparams,
            wrowsums,
            bias: conv.bias().data().to_vec(),
            spec,
            c_in: conv.c_in(),
            c_out: conv.c_out(),
            in_params,
        })
    }

    /// Forward over a raw `[C_in, H, W]` slice through the quantized
    /// GEMM, mirroring `Conv2d::forward_chw`: im2col (the existing
    /// float machinery — padding zeros land on the affine zero point),
    /// quantize the columns, accumulate `lut` products, dequantize with
    /// the zero-point correction and add the bias.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == c_in * h * w` with valid geometry.
    pub fn forward_chw(&self, data: &[f32], h: usize, w: usize, lut: &MulLut) -> Tensor {
        assert_eq!(data.len(), self.c_in * h * w, "QConv2d input size");
        let h_out = self.spec.output_size(h).expect("valid geometry");
        let w_out = self.spec.output_size(w).expect("valid geometry");
        let k2 = self.c_in * self.spec.kernel * self.spec.kernel;
        let n = h_out * w_out;
        let mut cols = vec![0.0f32; k2 * n];
        im2col_slice(data, self.c_in, h, w, self.spec, &mut cols).expect("valid conv input");
        let qcols = quantize_codes(&cols, self.in_params);
        let mut acc = vec![0u32; self.c_out * n];
        qgemm_nn(&self.qweight, &qcols, &mut acc, self.c_out, k2, n, lut);
        let cs = col_sums(&qcols, k2, n);
        let mut out = vec![0.0f32; self.c_out * n];
        affine_dequant(
            &acc,
            &self.wrowsums,
            &cs,
            k2,
            self.wparams,
            self.in_params,
            &mut out,
        );
        for (co, orow) in out.chunks_exact_mut(n).enumerate() {
            let b = self.bias[co];
            if b != 0.0 {
                for v in orow {
                    *v += b;
                }
            }
        }
        Tensor::from_vec(out, &[self.c_out, h_out, w_out]).expect("conv output shape")
    }

    /// Forward over a `[C_in, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics on a rank or channel mismatch.
    pub fn forward(&self, x: &Tensor, lut: &MulLut) -> Tensor {
        assert_eq!(x.ndim(), 3, "QConv2d expects [C,H,W]");
        assert_eq!(x.shape()[0], self.c_in, "QConv2d input channels");
        self.forward_chw(x.data(), x.shape()[1], x.shape()[2], lut)
    }
}

// ------------------------------------------------------------- QVotes

/// The `ClassCaps` vote transform `û_{j|i} = W_ij · u_i` through the
/// quantized datapath: `I` independent `(J·D_out × D_in)` GEMVs.
#[derive(Debug, Clone)]
pub struct QVotes {
    qweight: Vec<u8>,
    wparams: QuantParams,
    /// Per-`i` row sums, `[I, J·D_out]`.
    wrowsums: Vec<u32>,
    i_caps: usize,
    j_caps: usize,
    d_in: usize,
    d_out: usize,
    in_params: QuantParams,
}

impl QVotes {
    /// Quantizes a trained class-capsule layer's transformation
    /// matrices and fixes the unit-input quantization to `in_params`.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights contain non-finite values.
    pub fn from_class_caps(layer: &ClassCaps, in_params: QuantParams) -> Result<Self, FxpError> {
        let (i_caps, j_caps, d_in, d_out) = layer.dims();
        let wparams = QuantParams::calibrate(layer.weight(), 8)?;
        let qweight = quantize_codes(layer.weight().data(), wparams);
        let wrowsums = row_sums(&qweight, i_caps * j_caps * d_out, d_in);
        Ok(QVotes {
            qweight,
            wparams,
            wrowsums,
            i_caps,
            j_caps,
            d_in,
            d_out,
            in_params,
        })
    }

    /// Computes the vote tensor `[I, J, D_out]` for units `u` (`[I,
    /// D_in]`) with the multiplies served by `lut`.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward(&self, u: &Tensor, lut: &MulLut) -> Tensor {
        assert_eq!(u.shape(), [self.i_caps, self.d_in], "QVotes input");
        let qu = quantize_codes(u.data(), self.in_params);
        let rows = self.j_caps * self.d_out;
        let wstride = rows * self.d_in;
        let mut out = vec![0.0f32; self.i_caps * rows];
        let mut acc = vec![0u32; rows];
        for i in 0..self.i_caps {
            let qu_i = &qu[i * self.d_in..(i + 1) * self.d_in];
            acc.fill(0);
            qgemm_nn(
                &self.qweight[i * wstride..(i + 1) * wstride],
                qu_i,
                &mut acc,
                rows,
                self.d_in,
                1,
                lut,
            );
            let cs = col_sums(qu_i, self.d_in, 1);
            affine_dequant(
                &acc,
                &self.wrowsums[i * rows..(i + 1) * rows],
                &cs,
                self.d_in,
                self.wparams,
                self.in_params,
                &mut out[i * rows..(i + 1) * rows],
            );
        }
        Tensor::from_vec(out, &[self.i_caps, self.j_caps, self.d_out]).expect("votes shape")
    }
}

// -------------------------------------------------- quantized routing

/// Dynamic routing-by-agreement with its two MAC sites — the weighted
/// sum `s_j = Σᵢ k_ij·û_{j|i}` and the agreement (logits-update) dot
/// `û·v` — running on quantized codes through `lut`. The softmax and
/// squash (the accelerator's special-function units) stay in float.
///
/// `votes` is `[I, J, D]`; returns the routed capsules `[J, D]`.
/// `vote_params` / `coupling_params` / `act_params` are the calibrated
/// requantization ranges for the votes, the coupling coefficients and
/// the squashed capsules.
///
/// # Panics
///
/// Panics unless `votes` is rank 3 and `iterations >= 1`.
pub fn quantized_routing(
    votes: &Tensor,
    iterations: usize,
    vote_params: QuantParams,
    coupling_params: QuantParams,
    act_params: QuantParams,
    lut: &MulLut,
) -> Tensor {
    assert_eq!(votes.ndim(), 3, "quantized_routing expects [I, J, D]");
    assert!(iterations >= 1, "routing needs at least one iteration");
    let (i_caps, j_caps, d) = (votes.shape()[0], votes.shape()[1], votes.shape()[2]);
    // Same u32-accumulator contract as the qgemm kernels: the
    // weighted sum reduces over I, the agreement dot over D.
    debug_assert!(
        i_caps <= crate::kernels::MAX_ACC_K && d <= crate::kernels::MAX_ACC_K,
        "routing reduction ({i_caps} capsules, {d} dims) can overflow the u32 accumulator"
    );
    let qu = quantize_codes(votes.data(), vote_params);
    // Iteration-independent code sums for the corrections.
    // Σ_d qu_ijd per (i, j) — the agreement dot's left-operand sum.
    let qu_ij: Vec<u32> = qu
        .chunks_exact(d)
        .map(|c| c.iter().map(|&v| v as u32).sum())
        .collect();
    // Σ_i qu_ijd per (j, d) — the weighted sum's vote-operand sum.
    let mut qu_jd = vec![0u32; j_caps * d];
    for i in 0..i_caps {
        for j in 0..j_caps {
            let urow = &qu[(i * j_caps + j) * d..(i * j_caps + j + 1) * d];
            for (slot, &v) in qu_jd[j * d..(j + 1) * d].iter_mut().zip(urow) {
                *slot += v as u32;
            }
        }
    }
    let (lu, min_u) = (vote_params.lsb(), vote_params.min());
    let (lk, min_k) = (coupling_params.lsb(), coupling_params.min());
    let (lv, min_v) = (act_params.lsb(), act_params.min());

    let mut b = vec![0.0f32; i_caps * j_caps];
    let mut k = vec![0.0f32; i_caps * j_caps];
    let mut v = vec![0.0f32; j_caps * d];
    for iter in 0..iterations {
        // Coupling coefficients: softmax over J (float SFU).
        for (brow, krow) in b.chunks_exact(j_caps).zip(k.chunks_exact_mut(j_caps)) {
            let max = brow.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut denom = 0.0f32;
            for (kv, &bv) in krow.iter_mut().zip(brow) {
                *kv = (bv - max).exp();
                denom += *kv;
            }
            if denom > 0.0 {
                for kv in krow.iter_mut() {
                    *kv /= denom;
                }
            }
        }
        let qk = quantize_codes(&k, coupling_params);
        // Σ_i qk_ij per j.
        let mut qk_j = vec![0u32; j_caps];
        for qkrow in qk.chunks_exact(j_caps) {
            for (slot, &kv) in qk_j.iter_mut().zip(qkrow) {
                *slot += kv as u32;
            }
        }
        // Weighted sum s_jd = Σ_i k_ij·u_ijd on codes, then squash.
        for j in 0..j_caps {
            let s_corr_j = lk * min_u * qk_j[j] as f32 + i_caps as f32 * min_k * min_u;
            let mut norm2 = 0.0f32;
            let mut s_j = vec![0.0f32; d];
            for (di, s_slot) in s_j.iter_mut().enumerate() {
                let mut acc = 0u32;
                for i in 0..i_caps {
                    acc += lut.mul(qk[i * j_caps + j], qu[(i * j_caps + j) * d + di]) as u32;
                }
                let s = lk * lu * acc as f32 + s_corr_j + lu * min_k * qu_jd[j * d + di] as f32;
                *s_slot = s;
                norm2 += s * s;
            }
            let norm = (norm2 + EPS).sqrt();
            let factor = (norm2 / (1.0 + norm2)) / norm;
            for (v_slot, &s) in v[j * d..(j + 1) * d].iter_mut().zip(&s_j) {
                *v_slot = s * factor;
            }
        }
        if iter + 1 == iterations {
            break;
        }
        // Agreement b_ij += û_ij·v_j on codes.
        let qv = quantize_codes(&v, act_params);
        let qv_j: Vec<u32> = qv
            .chunks_exact(d)
            .map(|c| c.iter().map(|&x| x as u32).sum())
            .collect();
        for i in 0..i_caps {
            for j in 0..j_caps {
                let urow = &qu[(i * j_caps + j) * d..(i * j_caps + j + 1) * d];
                let vrow = &qv[j * d..(j + 1) * d];
                let mut acc = 0u32;
                for (&uc, &vc) in urow.iter().zip(vrow) {
                    acc += lut.mul(uc, vc) as u32;
                }
                b[i * j_caps + j] += lu * lv * acc as f32
                    + lu * min_v * qu_ij[i * j_caps + j] as f32
                    + lv * min_u * qv_j[j] as f32
                    + d as f32 * min_u * min_v;
            }
        }
    }
    Tensor::from_vec(v, &[j_caps, d]).expect("routed capsules")
}

// ------------------------------------------------------------ QCapsNet

/// The calibrated activation-quantization ranges of a CapsNet, one per
/// requantization point of the datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapsNetRanges {
    /// Network input (`Conv1` MAC inputs).
    pub input: QuantParams,
    /// Stem ReLU output — the primary conv's MAC inputs.
    pub stem_act: QuantParams,
    /// Primary squash output — the vote transform's MAC inputs.
    pub units: QuantParams,
    /// Vote / routing weighted-sum MAC outputs.
    pub votes: QuantParams,
    /// Routing coupling coefficients (softmax outputs).
    pub coupling: QuantParams,
    /// Routed capsule activations (squash outputs).
    pub caps_act: QuantParams,
}

/// Sweeps clean inputs through the trained float network and fixes
/// every requantization range from the observed real distributions.
///
/// # Errors
///
/// Returns an error if `images` is empty (no range observed) or a
/// tapped tensor contained only non-finite values.
pub fn calibrate_capsnet<'a>(
    model: &CapsNet,
    images: impl IntoIterator<Item = &'a Tensor>,
) -> Result<CapsNetRanges, FxpError> {
    let mut probe = model.clone();
    let mut obs = CalibrationObserver::new();
    for image in images {
        let _ = probe.forward(image, &mut obs);
    }
    Ok(CapsNetRanges {
        input: obs.params("Conv1", OpKind::MacInput, 8)?,
        stem_act: obs.params("PrimaryCaps", OpKind::MacInput, 8)?,
        units: obs.params("ClassCaps", OpKind::MacInput, 8)?,
        // The non-routing MacOutput tap is the vote tensor itself; the
        // in-routing MacOutput taps (the weighted sums, up to I× wider)
        // must not dilate the vote codes.
        votes: obs.params("ClassCaps", OpKind::MacOutput, 8)?,
        coupling: obs.routing_params("ClassCaps", OpKind::Softmax, 8)?,
        caps_act: obs.routing_params("ClassCaps", OpKind::Activation, 8)?,
    })
}

/// A trained CapsNet lowered onto the quantized datapath: same
/// weights, but every MAC runs on 8-bit codes through a pluggable
/// multiplier model.
#[derive(Debug, Clone)]
pub struct QCapsNet {
    cfg: CapsNetConfig,
    conv1: QConv2d,
    primary: QConv2d,
    votes: QVotes,
    ranges: CapsNetRanges,
}

impl QCapsNet {
    /// Lowers a trained model with pre-computed calibration ranges.
    ///
    /// # Errors
    ///
    /// Returns an error if any weight tensor contains non-finite
    /// values.
    pub fn from_trained(model: &CapsNet, ranges: CapsNetRanges) -> Result<Self, FxpError> {
        Ok(QCapsNet {
            cfg: model.config().clone(),
            conv1: QConv2d::from_conv(model.conv1(), ranges.input)?,
            primary: QConv2d::from_conv(model.primary().conv(), ranges.stem_act)?,
            votes: QVotes::from_class_caps(model.class_caps(), ranges.units)?,
            ranges,
        })
    }

    /// Calibrates on `images` and lowers the model in one step.
    ///
    /// # Errors
    ///
    /// Returns an error if calibration observes nothing or a weight
    /// tensor contains non-finite values.
    pub fn calibrated<'a>(
        model: &CapsNet,
        images: impl IntoIterator<Item = &'a Tensor>,
    ) -> Result<Self, FxpError> {
        let ranges = calibrate_capsnet(model, images)?;
        Self::from_trained(model, ranges)
    }

    /// The calibration ranges in use.
    pub fn ranges(&self) -> CapsNetRanges {
        self.ranges
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.cfg.class_caps
    }

    /// Full quantized inference: returns the class-capsule lengths
    /// (`[num_classes]`), every MAC multiplied through `lut`.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward(&self, x: &Tensor, lut: &MulLut) -> Tensor {
        assert_eq!(
            x.shape(),
            [
                self.cfg.input_channels,
                self.cfg.input_hw,
                self.cfg.input_hw
            ],
            "QCapsNet input"
        );
        // Stem conv + ReLU (requantized at the conv input).
        let mut a = self.conv1.forward(x, lut);
        for v in a.data_mut() {
            *v = v.max(0.0);
        }
        let (h1, w1) = (a.shape()[1], a.shape()[2]);
        // Primary caps: conv (requantized) + float squash.
        let prim = self.primary.forward_chw(a.data(), h1, w1, lut);
        let hp = prim.shape()[1];
        let p = hp * hp;
        let (c, d) = (self.cfg.primary_ctypes, self.cfg.primary_dim);
        let s3 = prim.into_reshaped(&[c, d, p]).expect("capsule fold");
        let squashed = squash_caps(&s3);
        // [C, D, H, W] -> units [C·H·W, D] (row per capsule).
        let src = squashed.data();
        let mut units = vec![0.0f32; c * d * p];
        for ci in 0..c {
            for di in 0..d {
                for pi in 0..p {
                    units[(ci * p + pi) * d + di] = src[(ci * d + di) * p + pi];
                }
            }
        }
        let u = Tensor::from_vec(units, &[c * p, d]).expect("units shape");
        // Votes + routing, both on the quantized MACs.
        let votes = self.votes.forward(&u, lut);
        let v = quantized_routing(
            &votes,
            self.cfg.routing_iters,
            self.ranges.votes,
            self.ranges.coupling,
            self.ranges.caps_act,
            lut,
        );
        let lengths: Vec<f32> = v
            .data()
            .chunks_exact(self.cfg.class_dim)
            .map(|row| (row.iter().map(|x| x * x).sum::<f32>() + EPS).sqrt())
            .collect();
        Tensor::from_vec(lengths, &[self.cfg.class_caps]).expect("lengths")
    }

    /// Argmax class prediction under `lut`.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn predict(&self, x: &Tensor, lut: &MulLut) -> usize {
        self.forward(x, lut).argmax().expect("non-empty lengths")
    }
}

/// Classification accuracy of the quantized datapath over a dataset,
/// every multiply served by `lut`. Serial and deterministic.
pub fn evaluate_quantized(model: &QCapsNet, data: &Dataset, lut: &MulLut) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data
        .samples
        .iter()
        .filter(|s| model.predict(&s.image, lut) == s.label)
        .count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::routing::dynamic_routing;
    use redcane_capsnet::NoInjection;
    use redcane_nn::Layer;
    use redcane_tensor::TensorRng;

    fn p(min: f32, max: f32) -> QuantParams {
        QuantParams::from_range(min, max, 8).unwrap()
    }

    #[test]
    fn qdense_with_exact_lut_tracks_float_dense() {
        let mut rng = TensorRng::from_seed(500);
        let mut dense = Dense::new(20, 6, &mut rng);
        let x = rng.uniform(&[20], -1.0, 1.0);
        let want = dense.forward(&x);
        let q = QDense::from_dense(&dense, p(-1.0, 1.0)).unwrap();
        let got = q.forward(&x, &MulLut::exact());
        let scale = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, b) in want.data().iter().zip(got.data()) {
            assert!(
                (a - b).abs() < 0.05 * (1.0 + scale),
                "float {a} vs quantized {b}"
            );
        }
    }

    #[test]
    fn qconv_with_exact_lut_tracks_float_conv() {
        let mut rng = TensorRng::from_seed(501);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = rng.uniform(&[2, 6, 6], -1.0, 1.0);
        let want = conv.forward(&x);
        let q = QConv2d::from_conv(&conv, p(-1.0, 1.0)).unwrap();
        let got = q.forward(&x, &MulLut::exact());
        assert_eq!(got.shape(), want.shape());
        let scale = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let mut total = 0.0f32;
        for (a, b) in want.data().iter().zip(got.data()) {
            let err = (a - b).abs();
            total += err;
            assert!(err < 0.1 * (1.0 + scale), "float {a} vs quantized {b}");
        }
        let mean = total / want.len() as f32;
        assert!(mean < 0.02 * (1.0 + scale), "mean error {mean}");
    }

    #[test]
    fn qvotes_with_exact_lut_tracks_float_votes() {
        let mut rng = TensorRng::from_seed(502);
        let layer = ClassCaps::new(0, "CC", 6, 4, 3, 5, 3, &mut rng);
        let u = rng.uniform(&[6, 3], -1.0, 1.0);
        let q = QVotes::from_class_caps(&layer, p(-1.0, 1.0)).unwrap();
        let got = q.forward(&u, &MulLut::exact());
        assert_eq!(got.shape(), &[6, 4, 5]);
        // Float oracle: û_{j|i} = W_ij · u_i by direct loops.
        let w = layer.weight().data();
        for i in 0..6 {
            for j in 0..4 {
                for di in 0..5 {
                    let mut want = 0.0f32;
                    for dk in 0..3 {
                        want += w[((i * 4 + j) * 5 + di) * 3 + dk] * u.data()[i * 3 + dk];
                    }
                    let have = got.data()[(i * 4 + j) * 5 + di];
                    assert!((want - have).abs() < 0.05, "vote [{i},{j},{di}]");
                }
            }
        }
    }

    #[test]
    fn quantized_routing_with_exact_lut_tracks_float_routing() {
        let mut rng = TensorRng::from_seed(503);
        let (i_caps, j_caps, d) = (8, 4, 5);
        let votes3 = rng.uniform(&[i_caps, j_caps, d], -1.0, 1.0);
        let votes4 = votes3.reshape(&[i_caps, j_caps, d, 1]).unwrap();
        let cache = dynamic_routing(votes4, 3, 0, "X", &mut NoInjection);
        let want = cache.v.reshape(&[j_caps, d]).unwrap();
        let got = quantized_routing(
            &votes3,
            3,
            QuantParams::calibrate(&votes3, 8).unwrap(),
            p(0.0, 1.0),
            p(-1.0, 1.0),
            &MulLut::exact(),
        );
        assert_eq!(got.shape(), &[j_caps, d]);
        for (a, b) in want.data().iter().zip(got.data()) {
            assert!((a - b).abs() < 0.05, "float {a} vs quantized {b}");
        }
    }

    #[test]
    fn qcapsnet_with_exact_lut_tracks_float_lengths() {
        let mut rng = TensorRng::from_seed(504);
        let cfg = CapsNetConfig::small(1, 16);
        let mut model = CapsNet::new(&cfg, &mut rng);
        let images: Vec<Tensor> = (0..4)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect();
        let q = QCapsNet::calibrated(&model, images.iter()).unwrap();
        assert_eq!(q.num_classes(), 10);
        let lut = MulLut::exact();
        for image in &images {
            let want = model.forward(image, &mut NoInjection);
            let got = q.forward(image, &lut);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in want.data().iter().zip(got.data()) {
                assert!((a - b).abs() < 0.15, "length {a} vs quantized {b}");
            }
        }
    }

    #[test]
    fn quantized_forward_is_deterministic() {
        let mut rng = TensorRng::from_seed(505);
        let model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let image = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let q = QCapsNet::calibrated(&model, [&image]).unwrap();
        let lut = MulLut::exact();
        assert_eq!(q.forward(&image, &lut), q.forward(&image, &lut));
    }

    #[test]
    fn calibration_needs_at_least_one_image() {
        let mut rng = TensorRng::from_seed(506);
        let model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        assert!(calibrate_capsnet(&model, std::iter::empty()).is_err());
    }
}
